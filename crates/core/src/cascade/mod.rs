//! The query-aware cascade serving plane (DESIGN.md §13).
//!
//! DiffServe-style serving flips the Argus ladder around: every job runs
//! a cheap **first pass**, a deterministic [`Discriminator`] scores the
//! result, and only flagged jobs are **escalated** — re-enqueued through
//! the ordinary dispatch path at a stronger level, carrying their
//! original arrival time so SLO accounting sees the full two-pass
//! latency. Escalation demand feeds back into planning: the metrics
//! stage maintains a per-level escalation-rate EWMA, the driver snapshots
//! it each allocator tick, and Eq. 1 prices first-pass capacity as
//! first-pass **plus expected-escalation** work
//! ([`crate::capacity::EscalationCtx`]).
//!
//! The plane is a composition of existing subsystems, not a side
//! channel: escalated jobs go through the same cache gate, Eq. 3
//! worker selection, batched dispatch, autoscaling and telemetry as
//! first passes — a second pass is just a dispatch whose target level
//! the driver overrides. `RunConfig::with_cascade` turns it on; off (the
//! default) the run is bit-identical to the pre-cascade tree.

use std::fmt;
use std::sync::Arc;

use argus_models::{ApproxLevel, Strategy};
use argus_prompts::Prompt;
use argus_quality::QualityOracle;
use std::collections::BTreeMap;

use crate::pipeline::{
    CacheGate, Dispatcher, InitialPlacement, LevelPlanner, RouteCtx, ServingPolicy, TickAction,
    WorkerSelector,
};
use crate::switcher::StrategySwitcher;

/// Demand-estimate floor per allocator tick, matching the Argus
/// allocator's smoothing (§4.2) so ladder-vs-cascade comparisons differ
/// only in routing, not demand estimation.
const DEMAND_DECAY: f64 = 0.85;

/// Upper bound of the doubt scale: a threshold of exactly `1.0` can
/// never be reached, so it degenerates to "never escalate", while `0.0`
/// (doubt is non-negative) degenerates to "escalate everything".
pub const MAX_DOUBT: f64 = 0.99;

/// Seed salt separating the built-in discriminator's scoring stream
/// from the ground-truth quality oracle: the discriminator is an
/// *imperfect but deterministic* judge, not an oracle replay.
const DISCRIMINATOR_SEED_SALT: u64 = 0x0D15C;

/// A deterministic first-pass judge: maps a completed generation to a
/// doubt score in `[0, MAX_DOUBT]`. Implementations must be pure
/// functions of their seed and inputs — no wall clock, no unseeded
/// randomness (lint rules D1/D5 apply to the cascade path).
pub trait Discriminator: fmt::Debug + Send + Sync {
    /// Display name (diagnostics and stats).
    fn name(&self) -> &'static str;

    /// Doubt in the first-pass result for `prompt` executed at `level`
    /// with the given retrieval `similarity` (the AC path's hit
    /// similarity; [`argus_quality::DEFAULT_AC_SIMILARITY`] otherwise).
    /// The driver escalates when `doubt >= threshold`.
    fn doubt(&self, prompt: &Prompt, level: ApproxLevel, similarity: f64) -> f64;
}

/// The built-in discriminator: a [`QualityOracle`] re-seeded away from
/// the run's ground-truth oracle estimates the first pass's quality
/// ratio, and doubt is the estimated relative quality *loss*. Sharing
/// the oracle's machinery keeps the judge hash-deterministic while the
/// seed salt keeps it honestly imperfect — its estimate disagrees with
/// the ground truth per prompt, exactly like a trained CLIP-head
/// discriminator would.
#[derive(Debug, Clone)]
pub struct OracleDiscriminator {
    estimator: QualityOracle,
}

impl OracleDiscriminator {
    /// A discriminator derived from the run seed.
    pub fn new(seed: u64) -> Self {
        OracleDiscriminator {
            estimator: QualityOracle::new(seed ^ DISCRIMINATOR_SEED_SALT),
        }
    }
}

impl Discriminator for OracleDiscriminator {
    fn name(&self) -> &'static str {
        "oracle-estimate"
    }

    fn doubt(&self, prompt: &Prompt, level: ApproxLevel, similarity: f64) -> f64 {
        let est = self
            .estimator
            .score_with_similarity(prompt, level, similarity);
        let base = self.estimator.base_quality(prompt);
        (1.0 - est / base).clamp(0.0, MAX_DOUBT)
    }
}

/// Configuration of the cascade plane (`RunConfig::with_cascade`).
#[derive(Debug, Clone)]
pub struct CascadeConfig {
    /// Ladder rung every job's first pass runs at, as an index into the
    /// SM ladder (clamped; `usize::MAX` — the default — means the
    /// cheapest rung, Tiny-SD).
    pub first_pass: usize,
    /// Ladder rung escalated jobs re-run at (default `0`, SD-XL).
    pub escalate_to: usize,
    /// Escalate when `doubt >= threshold`: `0.0` escalates everything,
    /// `1.0` never escalates.
    pub threshold: f64,
    /// Whether the observed escalation rate is priced into Eq. 1
    /// capacity planning (`false` is the s65 ablation arm).
    pub price_escalations: bool,
    /// Discriminator override; `None` uses [`OracleDiscriminator`]
    /// seeded from the run seed.
    pub discriminator: Option<Arc<dyn Discriminator>>,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            first_pass: usize::MAX,
            escalate_to: 0,
            threshold: 0.1,
            price_escalations: true,
            discriminator: None,
        }
    }
}

impl CascadeConfig {
    /// The default cascade: cheapest-first, escalate to SD-XL.
    pub fn new() -> Self {
        CascadeConfig::default()
    }

    /// Sets the first-pass rung (index into the SM ladder).
    pub fn with_first_pass(mut self, rung: usize) -> Self {
        self.first_pass = rung;
        self
    }

    /// Sets the escalation rung (index into the SM ladder).
    pub fn with_escalate_to(mut self, rung: usize) -> Self {
        self.escalate_to = rung;
        self
    }

    /// Sets the escalation threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Enables or disables Eq. 1 escalation pricing (the s65 ablation).
    pub fn with_escalation_pricing(mut self, on: bool) -> Self {
        self.price_escalations = on;
        self
    }

    /// Installs a custom discriminator.
    pub fn with_discriminator(mut self, d: Arc<dyn Discriminator>) -> Self {
        self.discriminator = Some(d);
        self
    }

    /// The first-pass rung clamped to `ladder_len`.
    pub fn first_pass_rung(&self, ladder_len: usize) -> usize {
        self.first_pass.min(ladder_len.saturating_sub(1))
    }

    /// The escalation rung clamped to `ladder_len`.
    pub fn escalate_rung(&self, ladder_len: usize) -> usize {
        self.escalate_to.min(ladder_len.saturating_sub(1))
    }
}

/// The cascade's [`ServingPolicy`]: every new job targets the first-pass
/// rung of the full SM ladder; escalated re-dispatches keep the same
/// pipeline but the driver overrides their target to the escalation
/// rung. Planning solves Eq. 1 over the whole ladder (the solver may
/// staff intermediate rungs; Eq. 3 spill then serves first passes there,
/// which the discriminator judges coherently because doubt is a function
/// of the *executed* level).
#[derive(Debug, Clone, Copy)]
pub struct CascadePolicy {
    first_pass: usize,
}

impl CascadePolicy {
    /// A cascade pipeline whose first pass targets `first_pass` (an
    /// index into the SM ladder, clamped at routing time).
    pub fn new(first_pass: usize) -> Self {
        CascadePolicy { first_pass }
    }
}

impl LevelPlanner for CascadePolicy {
    fn active_ladder(&self, _switcher: &StrategySwitcher) -> Vec<ApproxLevel> {
        ApproxLevel::ladder(Strategy::Sm)
    }

    fn pick_target_level(&self, _ctx: &mut RouteCtx<'_>, ladder: &[ApproxLevel]) -> usize {
        self.first_pass.min(ladder.len() - 1)
    }

    fn plan_tick(&self, observed_qpm: f64, last_demand_qpm: f64) -> TickAction {
        TickAction::Reallocate {
            estimate_qpm: observed_qpm.max(DEMAND_DECAY * last_demand_qpm),
        }
    }

    fn initial_placement(&self) -> InitialPlacement {
        InitialPlacement::Solve
    }
}

impl CacheGate for CascadePolicy {
    fn cache_active(&self, _switcher: &StrategySwitcher) -> bool {
        false
    }
}

impl WorkerSelector for CascadePolicy {}
impl Dispatcher for CascadePolicy {}

impl ServingPolicy for CascadePolicy {
    fn name(&self) -> &'static str {
        "Cascade"
    }
}

/// Cascade accounting surfaced as `RunOutcome::cascade`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CascadeStats {
    /// First-pass completions per *executed* level (spill can serve a
    /// first pass away from the configured rung).
    pub first_pass: BTreeMap<ApproxLevel, u64>,
    /// Discriminator-flagged escalations per first-pass level.
    pub escalated: BTreeMap<ApproxLevel, u64>,
    /// First passes the discriminator accepted, per level.
    pub accepted: BTreeMap<ApproxLevel, u64>,
    /// Final escalation-rate EWMA per first-pass level — the same
    /// series the driver feeds into Eq. 1 each tick and exports as the
    /// `escalation_rate` timeline gauge.
    pub escalation_rate: BTreeMap<ApproxLevel, f64>,
    /// Escalated jobs whose second pass completed.
    pub escalated_completed: u64,
    /// Mean relative-quality gain (`final − first` quality ratio) over
    /// completed escalations — what the second pass bought.
    pub quality_delta: f64,
}

impl CascadeStats {
    /// Total first-pass completions across levels.
    pub fn first_pass_total(&self) -> u64 {
        self.first_pass.values().sum()
    }

    /// Total escalations across levels.
    pub fn escalated_total(&self) -> u64 {
        self.escalated.values().sum()
    }

    /// Total accepted first passes across levels.
    pub fn accepted_total(&self) -> u64 {
        self.accepted.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switcher::SwitcherConfig;
    use argus_prompts::PromptGenerator;

    #[test]
    fn discriminator_is_deterministic_and_bounded() {
        let prompts = PromptGenerator::new(7).generate_batch(64);
        let d = OracleDiscriminator::new(42);
        let ladder = ApproxLevel::ladder(Strategy::Sm);
        for p in &prompts {
            for &level in &ladder {
                let a = d.doubt(p, level, 0.75);
                let b = d.doubt(p, level, 0.75);
                assert_eq!(a.to_bits(), b.to_bits());
                assert!((0.0..=MAX_DOUBT).contains(&a), "{a}");
            }
        }
    }

    #[test]
    fn discriminator_doubts_deep_approximation_more() {
        // Averaged over prompts, the cheapest rung draws more doubt than
        // full SD-XL — the judge tracks real quality loss directionally.
        let prompts = PromptGenerator::new(3).generate_batch(256);
        let d = OracleDiscriminator::new(42);
        let ladder = ApproxLevel::ladder(Strategy::Sm);
        let mean = |level: ApproxLevel| {
            prompts.iter().map(|p| d.doubt(p, level, 0.75)).sum::<f64>() / 256.0
        };
        assert!(mean(ladder[5]) > mean(ladder[0]));
    }

    #[test]
    fn discriminator_disagrees_with_the_ground_truth_oracle() {
        // The salt keeps the judge imperfect: its doubt ordering must not
        // be a pointwise replay of the true quality oracle.
        let prompts = PromptGenerator::new(3).generate_batch(128);
        let d = OracleDiscriminator::new(42);
        let truth = QualityOracle::new(42);
        let level = ApproxLevel::ladder(Strategy::Sm)[5];
        let disagreements = prompts
            .iter()
            .filter(|p| {
                let est = 1.0 - d.doubt(p, level, 0.75);
                let real = truth.score_with_similarity(p, level, 0.75) / truth.base_quality(p);
                (est - real).abs() > 0.01
            })
            .count();
        assert!(disagreements > 16, "{disagreements} of 128");
    }

    #[test]
    fn config_rungs_clamp_to_the_ladder() {
        let cfg = CascadeConfig::new();
        assert_eq!(cfg.first_pass_rung(6), 5);
        assert_eq!(cfg.escalate_rung(6), 0);
        let custom = CascadeConfig::new().with_first_pass(3).with_escalate_to(99);
        assert_eq!(custom.first_pass_rung(6), 3);
        assert_eq!(custom.escalate_rung(6), 5);
    }

    #[test]
    fn policy_targets_the_first_pass_rung() {
        let p = CascadePolicy::new(usize::MAX);
        let switcher = StrategySwitcher::new(SwitcherConfig::default());
        let ladder = p.active_ladder(&switcher);
        assert_eq!(ladder, ApproxLevel::ladder(Strategy::Sm));
        assert!(!p.cache_active(&switcher));
        assert!(!p.uses_classifier());
        assert!(!p.uses_cache_store());
        assert_eq!(p.name(), "Cascade");
    }
}
