//! The elastic fleet subsystem: autoscaling policy, spot pricing and
//! cost-aware accounting (ROADMAP direction 1).
//!
//! The paper's §6 saturation signal (`RunOutcome::saturated_minutes`) is
//! explicitly a *scale-out* signal with no machinery behind it. This
//! module supplies the machinery, in three parts:
//!
//! * an [`AutoscalePolicy`] + [`AutoscaleController`] pair — a
//!   deterministic hysteresis controller that grows a pool after
//!   sustained saturation/re-split/backlog pressure and shrinks it after
//!   sustained idleness, with a cloud provisioning delay, a per-pool
//!   cooldown and per-architecture min/max bounds;
//! * spot-pool configuration ([`SpotPool`]) and the preemption-schedule
//!   helper [`preemption_events`], which turns the seeded storm schedules
//!   of `argus_workload` into [`crate::system::FaultEvent::Preemption`]
//!   events whose warning window lets the dispatcher drain work off the
//!   doomed instance;
//! * cost accounting ([`FleetStats`], [`CostReport`]) — per-architecture
//!   on-demand/spot $/GPU-hour rates integrated over the billed-worker
//!   membership telemetry, so elasticity experiments are measurable in
//!   dollars without re-running.
//!
//! Everything here is pure data + arithmetic: the controller is a pure
//! function of the signal sequence it is fed, so runs stay bit-identical
//! across seeds and actor pacings (`tests/fleet.rs` pins it).

use argus_models::GpuArch;

use crate::system::FaultEvent;

/// Published on-demand price per GPU-hour, by architecture — indicative
/// cloud list prices (p3/g5/p4d single-GPU shares), fixed constants so
/// cost reports are reproducible.
pub fn on_demand_hourly(gpu: GpuArch) -> f64 {
    match gpu {
        GpuArch::V100 => 3.06,
        GpuArch::A10G => 1.21,
        GpuArch::A100 => 4.10,
    }
}

/// The effective hourly rate for a worker: the on-demand price, reduced
/// by the spot discount when the worker is preemptible (`discount` in
/// `(0, 1]`; `0.0` means on-demand).
pub fn hourly_rate(gpu: GpuArch, discount: f64) -> f64 {
    on_demand_hourly(gpu) * (1.0 - discount)
}

/// A preemptible worker pool ([`crate::system::RunConfig::with_spot_pool`]):
/// `workers` instances of `gpu` billed at `(1 - discount)` times the
/// on-demand rate, exposed to [`crate::system::FaultEvent::Preemption`]
/// schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotPool {
    /// Architecture of the pool.
    pub gpu: GpuArch,
    /// Number of spot workers.
    pub workers: usize,
    /// Spot discount off the on-demand rate, in `(0, 1]`.
    pub discount: f64,
}

/// Autoscale controller configuration
/// ([`crate::system::RunConfig::with_autoscaler`]).
///
/// The controller acts once per allocator tick (one virtual minute). A
/// pool scales **out** after [`AutoscalePolicy::scale_out_after`]
/// consecutive pressured ticks (solver saturation, a mid-minute re-split
/// firing, or backlog beyond the planned capacity) and **in** after
/// [`AutoscalePolicy::scale_in_after`] consecutive idle ticks (demand
/// share below [`AutoscalePolicy::idle_utilization`] of capacity with an
/// empty backlog). New instances come up after
/// [`AutoscalePolicy::provisioning_delay_secs`]; any action starts a
/// per-pool cooldown of [`AutoscalePolicy::cooldown_secs`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalePolicy {
    /// Consecutive pressured ticks before a scale-out.
    pub scale_out_after: u32,
    /// Consecutive idle ticks before a scale-in.
    pub scale_in_after: u32,
    /// Workers added/removed per action.
    pub step: usize,
    /// Cloud provisioning delay (seconds) before a new worker serves.
    pub provisioning_delay_secs: f64,
    /// Minimum seconds between actions on the same pool.
    pub cooldown_secs: f64,
    /// Idle threshold: a pool is idle when its demand share is below this
    /// fraction of its planned capacity (and its backlog is empty).
    pub idle_utilization: f64,
    /// Per-architecture `(min, max)` worker bounds. Architectures not
    /// listed default to `min 1, max 2 × initial pool size`.
    pub bounds: Vec<(GpuArch, usize, usize)>,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            scale_out_after: 2,
            scale_in_after: 5,
            step: 1,
            provisioning_delay_secs: 90.0,
            cooldown_secs: 180.0,
            idle_utilization: 0.30,
            bounds: Vec::new(),
        }
    }
}

impl AutoscalePolicy {
    /// Sets the `(min, max)` worker bounds for one architecture pool.
    ///
    /// # Panics
    /// Panics if `min == 0` or `min > max`.
    pub fn with_bounds(mut self, gpu: GpuArch, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "invalid autoscale bounds");
        self.bounds.retain(|&(g, _, _)| g != gpu);
        self.bounds.push((gpu, min, max));
        self
    }

    /// Sets the per-action worker step.
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn with_step(mut self, step: usize) -> Self {
        assert!(step >= 1, "autoscale step must be at least 1");
        self.step = step;
        self
    }

    /// Sets the provisioning delay in seconds.
    pub fn with_provisioning_delay(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid delay");
        self.provisioning_delay_secs = secs;
        self
    }

    /// Sets the per-pool cooldown in seconds.
    pub fn with_cooldown(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid cooldown");
        self.cooldown_secs = secs;
        self
    }
}

/// One pool's controller inputs for a tick, as the driver observes them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PoolSignal {
    pub(crate) gpu: GpuArch,
    /// Saturation, a re-split firing, or backlog beyond planned capacity.
    pub(crate) pressured: bool,
    /// Demand share below the idle fraction of capacity, empty backlog.
    pub(crate) idle: bool,
    /// Dispatchable workers right now.
    pub(crate) alive: usize,
    /// Workers already provisioning toward this pool.
    pub(crate) pending: usize,
}

/// A scaling decision the driver must carry out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScaleAction {
    /// Provision `n` new on-demand workers on `gpu`.
    Out { gpu: GpuArch, n: usize },
    /// Retire `n` idle workers from the `gpu` pool.
    In { gpu: GpuArch, n: usize },
}

#[derive(Debug, Clone)]
struct PoolCtl {
    gpu: GpuArch,
    min: usize,
    max: usize,
    out_streak: u32,
    in_streak: u32,
    cooldown_until: f64,
}

/// The deterministic hysteresis controller behind
/// [`crate::system::RunConfig::with_autoscaler`]. Owned by the fleet
/// actor stage; the driver feeds it one [`PoolSignal`] per pool per tick
/// and executes the returned [`ScaleAction`]s.
#[derive(Debug, Clone)]
pub(crate) struct AutoscaleController {
    policy: AutoscalePolicy,
    pools: Vec<PoolCtl>,
}

impl AutoscaleController {
    /// Builds the controller over the run's initial per-architecture pool
    /// sizes (spot workers included — they count toward the bounds the
    /// controller respects).
    pub(crate) fn new(policy: AutoscalePolicy, initial: &[(GpuArch, usize)]) -> Self {
        let pools = initial
            .iter()
            .map(|&(gpu, n)| {
                let (min, max) = policy
                    .bounds
                    .iter()
                    .find(|&&(g, _, _)| g == gpu)
                    .map(|&(_, lo, hi)| (lo, hi))
                    .unwrap_or((1, (2 * n).max(2)));
                PoolCtl {
                    gpu,
                    min,
                    max,
                    out_streak: 0,
                    in_streak: 0,
                    cooldown_until: 0.0,
                }
            })
            .collect();
        AutoscaleController { policy, pools }
    }

    /// Advances the controller by one tick and returns the actions due.
    pub(crate) fn on_tick(&mut self, t_secs: f64, signals: &[PoolSignal]) -> Vec<ScaleAction> {
        let mut actions = Vec::new();
        for s in signals {
            let Some(ctl) = self.pools.iter_mut().find(|p| p.gpu == s.gpu) else {
                continue;
            };
            if s.pressured {
                ctl.in_streak = 0;
                ctl.out_streak += 1;
            } else if s.idle {
                ctl.out_streak = 0;
                ctl.in_streak += 1;
            } else {
                ctl.out_streak = 0;
                ctl.in_streak = 0;
            }
            if t_secs < ctl.cooldown_until {
                continue;
            }
            let present = s.alive + s.pending;
            if ctl.out_streak >= self.policy.scale_out_after && present < ctl.max {
                let n = self.policy.step.min(ctl.max - present);
                actions.push(ScaleAction::Out { gpu: ctl.gpu, n });
                ctl.out_streak = 0;
                ctl.cooldown_until = t_secs + self.policy.cooldown_secs;
            } else if ctl.in_streak >= self.policy.scale_in_after && s.alive > ctl.min {
                let n = self.policy.step.min(s.alive - ctl.min);
                actions.push(ScaleAction::In { gpu: ctl.gpu, n });
                ctl.in_streak = 0;
                ctl.cooldown_until = t_secs + self.policy.cooldown_secs;
            }
        }
        actions
    }
}

/// One point of the billed-membership telemetry: the per-(architecture,
/// discount) billed worker counts in force from `t_secs` until the next
/// sample. A worker is billed while not failed — draining spot instances
/// are still rented; crashed, not-yet-provisioned and retired ones are
/// not.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipSample {
    /// Sample time (seconds from run start).
    pub t_secs: f64,
    /// `(architecture, spot discount — 0.0 for on-demand, billed count)`.
    pub counts: Vec<(GpuArch, f64, u32)>,
}

/// Whole-run fleet telemetry on [`crate::system::RunOutcome`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetStats {
    /// Scale-out actions taken.
    pub scale_out_events: u64,
    /// Scale-in actions taken.
    pub scale_in_events: u64,
    /// Workers provisioned by scale-outs.
    pub workers_added: u64,
    /// Workers actually retired by scale-ins (bounded by how many idle
    /// victims existed when the action fired).
    pub workers_retired: u64,
    /// Preemptions whose warning window fully drained the instance (no
    /// in-flight work lost when it fired).
    pub preemptions_ridden: u64,
    /// Preemptions that killed an in-flight pass.
    pub preemptions_lost: u64,
    /// Maximum billed workers at any sample point.
    pub peak_workers: u32,
    /// The piecewise-constant billed-membership log the cost integral is
    /// computed from; `tests/fleet.rs` reconciles [`CostReport`] against
    /// it.
    pub samples: Vec<MembershipSample>,
}

/// Dollar-denominated accounting on [`crate::system::RunOutcome`],
/// integrated from the billed-membership telemetry at the fixed
/// [`on_demand_hourly`] rates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostReport {
    /// Total spend over the run.
    pub total_dollars: f64,
    /// Spend on on-demand instances.
    pub on_demand_dollars: f64,
    /// Spend on spot instances (post-discount).
    pub spot_dollars: f64,
    /// Total spend per thousand completed images (0 when nothing
    /// completed).
    pub dollars_per_1k_images: f64,
    /// Billed GPU-minutes by `(architecture, on-demand, spot)`.
    pub gpu_minutes: Vec<(GpuArch, f64, f64)>,
}

/// Converts a preemption-storm schedule (`(minute, worker indices)` —
/// e.g. from `argus_workload::preemption_storm`) into
/// [`FaultEvent::Preemption`] events with the given warning window.
/// `warning_secs: 0.0` degrades each event to an unwarned crash,
/// bit-identical to [`FaultEvent::WorkerFail`].
pub fn preemption_events(schedule: &[(f64, Vec<usize>)], warning_secs: f64) -> Vec<FaultEvent> {
    schedule
        .iter()
        .map(|(minute, workers)| FaultEvent::Preemption {
            at_minute: *minute,
            workers: workers.clone(),
            warning_secs,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(gpu: GpuArch, pressured: bool, idle: bool, alive: usize, pending: usize) -> PoolSignal {
        PoolSignal {
            gpu,
            pressured,
            idle,
            alive,
            pending,
        }
    }

    #[test]
    fn pricing_is_positive_and_discounted() {
        for gpu in GpuArch::ALL {
            assert!(on_demand_hourly(gpu) > 0.0);
            assert!(hourly_rate(gpu, 0.7) < on_demand_hourly(gpu));
            assert_eq!(hourly_rate(gpu, 0.0), on_demand_hourly(gpu));
        }
    }

    #[test]
    fn scale_out_needs_sustained_pressure_and_respects_cooldown() {
        let policy = AutoscalePolicy::default().with_cooldown(180.0);
        let mut ctl = AutoscaleController::new(policy, &[(GpuArch::A100, 8)]);
        // One pressured tick: below the streak threshold.
        let a = ctl.on_tick(60.0, &[sig(GpuArch::A100, true, false, 8, 0)]);
        assert!(a.is_empty());
        // Second consecutive pressured tick: scale out one step.
        let a = ctl.on_tick(120.0, &[sig(GpuArch::A100, true, false, 8, 0)]);
        assert_eq!(
            a,
            vec![ScaleAction::Out {
                gpu: GpuArch::A100,
                n: 1
            }]
        );
        // Pressure continues but the cooldown holds further actions.
        let a = ctl.on_tick(180.0, &[sig(GpuArch::A100, true, false, 8, 1)]);
        assert!(a.is_empty());
        let a = ctl.on_tick(240.0, &[sig(GpuArch::A100, true, false, 8, 1)]);
        assert!(a.is_empty());
        // Cooldown expired and the streak is sustained: act again.
        let a = ctl.on_tick(300.0, &[sig(GpuArch::A100, true, false, 9, 0)]);
        assert_eq!(
            a,
            vec![ScaleAction::Out {
                gpu: GpuArch::A100,
                n: 1
            }]
        );
    }

    #[test]
    fn scale_out_stops_at_the_max_bound() {
        let policy = AutoscalePolicy::default().with_bounds(GpuArch::A100, 2, 9);
        let mut ctl = AutoscaleController::new(policy, &[(GpuArch::A100, 8)]);
        ctl.on_tick(60.0, &[sig(GpuArch::A100, true, false, 8, 0)]);
        // 8 alive + 1 pending = 9 = max: nothing to add.
        ctl.on_tick(120.0, &[sig(GpuArch::A100, true, false, 8, 1)]);
        let a = ctl.on_tick(600.0, &[sig(GpuArch::A100, true, false, 8, 1)]);
        assert!(a.is_empty(), "{a:?}");
        // With headroom of one, the step is clamped to it.
        let policy = AutoscalePolicy::default()
            .with_step(4)
            .with_bounds(GpuArch::A100, 2, 9);
        let mut ctl = AutoscaleController::new(policy, &[(GpuArch::A100, 8)]);
        ctl.on_tick(60.0, &[sig(GpuArch::A100, true, false, 8, 0)]);
        let a = ctl.on_tick(120.0, &[sig(GpuArch::A100, true, false, 8, 0)]);
        assert_eq!(
            a,
            vec![ScaleAction::Out {
                gpu: GpuArch::A100,
                n: 1
            }]
        );
    }

    #[test]
    fn scale_in_needs_a_longer_idle_streak_and_respects_min() {
        let policy = AutoscalePolicy::default().with_bounds(GpuArch::A100, 7, 16);
        let mut ctl = AutoscaleController::new(policy, &[(GpuArch::A100, 8)]);
        for i in 0..4 {
            let a = ctl.on_tick(
                60.0 * (i + 1) as f64,
                &[sig(GpuArch::A100, false, true, 8, 0)],
            );
            assert!(a.is_empty(), "tick {i}: {a:?}");
        }
        let a = ctl.on_tick(300.0, &[sig(GpuArch::A100, false, true, 8, 0)]);
        assert_eq!(
            a,
            vec![ScaleAction::In {
                gpu: GpuArch::A100,
                n: 1
            }]
        );
        // At the minimum, idleness no longer shrinks the pool.
        let mut ctl = AutoscaleController::new(
            AutoscalePolicy::default().with_bounds(GpuArch::A100, 8, 16),
            &[(GpuArch::A100, 8)],
        );
        for i in 0..10 {
            let a = ctl.on_tick(
                60.0 * (i + 1) as f64,
                &[sig(GpuArch::A100, false, true, 8, 0)],
            );
            assert!(a.is_empty(), "tick {i}: {a:?}");
        }
    }

    #[test]
    fn neutral_ticks_reset_both_streaks() {
        let mut ctl = AutoscaleController::new(AutoscalePolicy::default(), &[(GpuArch::A100, 8)]);
        ctl.on_tick(60.0, &[sig(GpuArch::A100, true, false, 8, 0)]);
        // Neither pressured nor idle: the pressure streak resets.
        ctl.on_tick(120.0, &[sig(GpuArch::A100, false, false, 8, 0)]);
        let a = ctl.on_tick(180.0, &[sig(GpuArch::A100, true, false, 8, 0)]);
        assert!(a.is_empty());
    }

    #[test]
    fn controller_is_deterministic() {
        let run = || {
            let mut ctl = AutoscaleController::new(
                AutoscalePolicy::default(),
                &[(GpuArch::A100, 8), (GpuArch::V100, 4)],
            );
            let mut log = Vec::new();
            for i in 0..30u32 {
                let pressured = i % 7 < 3;
                let idle = i % 7 >= 5;
                log.extend(ctl.on_tick(
                    60.0 * (i + 1) as f64,
                    &[
                        sig(GpuArch::A100, pressured, idle, 8, 0),
                        sig(GpuArch::V100, idle, pressured, 4, 0),
                    ],
                ));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn preemption_schedule_maps_to_fault_events() {
        let schedule = vec![(5.0, vec![1, 2]), (9.5, vec![0])];
        let events = preemption_events(&schedule, 30.0);
        assert_eq!(events.len(), 2);
        match &events[0] {
            FaultEvent::Preemption {
                at_minute,
                workers,
                warning_secs,
            } => {
                assert_eq!(*at_minute, 5.0);
                assert_eq!(workers, &[1, 2]);
                assert_eq!(*warning_secs, 30.0);
            }
            other => panic!("expected a preemption, got {other:?}"),
        }
    }
}
