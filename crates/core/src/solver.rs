//! The Eq. 1 allocator: worker-to-level assignment and load split.
//!
//! Given the predicted workload `Λ_t` (QPM), a fixed worker count, and the
//! profiled quality `q_v` / peak throughput `peak(v)` of each approximation
//! level, choose how many workers run each level (`g_{v,w}`) and how much
//! load each level serves (`ω(v)`), maximizing `Σ_v q_v · ω(v)` subject to
//! throughput and assignment constraints.
//!
//! Three interchangeable solvers:
//!
//! * [`AllocationProblem::solve_exact`] — enumerates worker compositions
//!   (the workers are interchangeable, so only the per-level *counts*
//!   matter) with an optimal greedy fill per composition; exact for the
//!   cluster sizes of the paper's testbed.
//! * [`AllocationProblem::solve_fast`] — branch-and-bound over the same
//!   composition space with a certified upper bound, returning the
//!   bit-identical optimum while visiting a tiny fraction of the
//!   `C(W + V − 1, V − 1)` compositions; this is what keeps the §5.7
//!   sub-100 ms allocation budget at 64–128-worker fleets.
//! * [`AllocationProblem::solve_milp`] — the paper's integer linear
//!   program (linearized per-worker formulation) through `argus-ilp`,
//!   as solved by Gurobi in the authors' deployment. Used for
//!   cross-validation and the solver-scalability claim of §5.7.
//!
//! [`AllocationProblem::solve`] picks between the exact enumeration and
//! the branch-and-bound automatically by cluster size
//! ([`FAST_SOLVER_THRESHOLD`]).

use argus_models::ApproxLevel;

/// Worker count above which [`AllocationProblem::solve`] switches from the
/// full composition enumeration to the branch-and-bound search. At 16
/// workers and 6 levels the enumeration visits ~20k compositions (sub-ms);
/// past that it grows as `C(W + 5, 5)` and the pruned search wins.
pub const FAST_SOLVER_THRESHOLD: usize = 16;

/// Profile of one approximation level as seen by the solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelProfile {
    /// The level.
    pub level: ApproxLevel,
    /// Profiled mean quality `q_v` (PickScore).
    pub quality: f64,
    /// Profiled peak serving throughput of one worker at this level, in
    /// queries per minute (includes any retrieval overhead for AC).
    pub peak_qpm: f64,
}

/// An allocation problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationProblem {
    /// Level profiles, ordered slowest (highest quality) first, matching
    /// [`ApproxLevel::ladder`].
    pub levels: Vec<LevelProfile>,
    /// Number of available workers.
    pub workers: usize,
    /// Predicted demand `Λ_t` in QPM.
    pub demand_qpm: f64,
}

/// The allocator's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Workers assigned per level (`Σ = workers` may not hold: idle
    /// workers are parked on the slowest level, never wasted).
    pub workers_per_level: Vec<usize>,
    /// Load served per level in QPM (`ω(v)`, absolute).
    pub omega_qpm: Vec<f64>,
    /// Achievable total throughput under this assignment (min(demand,
    /// capacity)).
    pub served_qpm: f64,
    /// Whether demand exceeded the cluster's maximum capacity even at the
    /// deepest approximation — the §6 saturation signal for horizontal
    /// scaling.
    pub saturated: bool,
}

/// Normalizes a load vector to a distribution `ω(v) / Σω`. When nothing
/// is served, all mass lands on index 0 — the slowest, highest-quality
/// level. Shared by [`Allocation::omega_normalized`] and the
/// heterogeneous pool-merge path.
pub(crate) fn normalize_load(omega_qpm: &[f64]) -> Vec<f64> {
    let total: f64 = omega_qpm.iter().sum();
    if total <= 0.0 {
        let mut v = vec![0.0; omega_qpm.len()];
        if !v.is_empty() {
            v[0] = 1.0;
        }
        return v;
    }
    omega_qpm.iter().map(|w| w / total).collect()
}

impl Allocation {
    /// The normalized load distribution `ω(v) / Σω` (all mass on the
    /// slowest level if nothing is served).
    pub fn omega_normalized(&self) -> Vec<f64> {
        normalize_load(&self.omega_qpm)
    }

    /// Mean quality of the allocation: `Σ q_v ω(v) / Σ ω(v)`.
    pub fn mean_quality(&self, levels: &[LevelProfile]) -> f64 {
        let total: f64 = self.omega_qpm.iter().sum();
        if total <= 0.0 {
            return levels.first().map_or(0.0, |l| l.quality);
        }
        self.omega_qpm
            .iter()
            .zip(levels)
            .map(|(w, l)| w * l.quality)
            .sum::<f64>()
            / total
    }
}

impl AllocationProblem {
    /// Builds a problem from a ladder with profiled defaults on the given
    /// GPU, optionally inflating AC latency by a mean retrieval overhead.
    ///
    /// This is the paper's batch-1 profile — shorthand for
    /// [`AllocationProblem::from_capacity_model`] with
    /// [`crate::capacity::Batch1Model`] and a batch-1 context.
    pub fn from_ladder(
        ladder: &[ApproxLevel],
        gpu: argus_models::GpuArch,
        retrieval_overhead_secs: f64,
        workers: usize,
        demand_qpm: f64,
    ) -> Self {
        Self::from_capacity_model(
            &crate::capacity::Batch1Model,
            ladder,
            gpu,
            &crate::capacity::CapacityCtx::batch1(retrieval_overhead_secs),
            workers,
            demand_qpm,
        )
    }

    /// Builds a problem whose per-level peaks come from a pluggable
    /// [`crate::capacity::CapacityModel`] — the seam every capacity
    /// refinement (batching-aware planning, measured profiles, derating)
    /// plugs into. Qualities stay the profiled `q_v`; only the capacity
    /// estimate is delegated.
    pub fn from_capacity_model(
        model: &dyn crate::capacity::CapacityModel,
        ladder: &[ApproxLevel],
        gpu: argus_models::GpuArch,
        ctx: &crate::capacity::CapacityCtx,
        workers: usize,
        demand_qpm: f64,
    ) -> Self {
        let levels = ladder
            .iter()
            .map(|&level| LevelProfile {
                level,
                quality: level.profiled_quality(),
                peak_qpm: model.peak_qpm(level, gpu, ctx),
            })
            .collect();
        AllocationProblem {
            levels,
            workers,
            demand_qpm,
        }
    }

    /// Derates each level's peak throughput so that steady operation at
    /// "full" allocation keeps expected queueing delay within the latency
    /// SLO.
    ///
    /// With near-deterministic service times, an M/D/1 queue at
    /// utilization `ρ` waits ≈ `ρ / (2(1 − ρ))` service times. Solving for
    /// the largest `ρ` whose wait fits the per-level slack
    /// `c = SLO/s − 1` gives `ρ_max = 2c / (1 + 2c)` (capped at 0.95).
    /// Deep (fast) levels have more SLO slack and may run hotter — which
    /// is why graceful quality degradation, not flat over-provisioning, is
    /// the right response to load.
    pub fn with_slo_derating(self, slo_secs: f64) -> Self {
        let latencies: Vec<f64> = self.levels.iter().map(|l| 60.0 / l.peak_qpm).collect();
        self.with_slo_derating_latencies(slo_secs, &latencies)
    }

    /// [`AllocationProblem::with_slo_derating`] with explicit per-level
    /// per-job latencies. The default derating reads each level's latency
    /// off its throughput (`60 / peak`), which is only right at batch 1:
    /// a worker planned at batch `B` serves jobs at the amortized rate
    /// but each job *waits* the full inflated pass, so batching-aware
    /// capacity models hand the true wall latency here
    /// ([`crate::capacity::CapacityModel::job_latency_secs`]) and the
    /// allowed utilization shrinks accordingly.
    ///
    /// # Panics
    /// Panics on a non-positive SLO or a latency-count mismatch.
    pub fn with_slo_derating_latencies(mut self, slo_secs: f64, latencies: &[f64]) -> Self {
        assert!(slo_secs > 0.0, "SLO must be positive");
        assert_eq!(
            latencies.len(),
            self.levels.len(),
            "one latency per level required"
        );
        for (l, &service) in self.levels.iter_mut().zip(latencies) {
            let slack = (slo_secs / service - 1.0).max(0.1);
            let rho_max = (2.0 * slack / (1.0 + 2.0 * slack)).min(0.95);
            l.peak_qpm *= rho_max;
        }
        self
    }

    /// Validates problem invariants.
    ///
    /// # Panics
    /// Panics on an empty ladder, zero workers, or non-finite inputs.
    fn validate(&self) {
        assert!(!self.levels.is_empty(), "no approximation levels");
        assert!(self.workers > 0, "no workers");
        assert!(
            self.demand_qpm.is_finite() && self.demand_qpm >= 0.0,
            "invalid demand"
        );
        for l in &self.levels {
            assert!(l.peak_qpm > 0.0 && l.peak_qpm.is_finite(), "invalid peak");
            assert!(l.quality.is_finite(), "invalid quality");
        }
    }

    /// Maximum cluster throughput: every worker at the fastest level.
    pub fn max_capacity_qpm(&self) -> f64 {
        let fastest = self
            .levels
            .iter()
            .map(|l| l.peak_qpm)
            .fold(0.0f64, f64::max);
        fastest * self.workers as f64
    }

    /// Level indices sorted by quality descending (stable on ties) — the
    /// greedy-fill consumption order. Computed once per solve and shared,
    /// so both searches fill in the identical float-op sequence.
    fn quality_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.levels.len()).collect();
        order.sort_by(|&a, &b| {
            self.levels[b]
                .quality
                .partial_cmp(&self.levels[a].quality)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }

    /// Optimal greedy fill for fixed per-level worker counts: load goes to
    /// the highest-quality levels first (per `order`, from
    /// [`AllocationProblem::quality_order`]), up to capacity, until
    /// `demand` is covered. Returns (omega, served, quality_sum).
    fn greedy_fill(&self, counts: &[usize], demand: f64, order: &[usize]) -> (Vec<f64>, f64, f64) {
        let mut omega = vec![0.0; self.levels.len()];
        let mut remaining = demand;
        let mut quality_sum = 0.0;
        for &i in order {
            if remaining <= 0.0 {
                break;
            }
            let cap = counts[i] as f64 * self.levels[i].peak_qpm;
            let take = cap.min(remaining);
            omega[i] = take;
            quality_sum += take * self.levels[i].quality;
            remaining -= take;
        }
        (omega, demand - remaining.max(0.0), quality_sum)
    }

    /// Scores one complete composition: greedy-fill quality plus the
    /// 1e-9 idle-headroom tie-break. Returns `None` for compositions that
    /// cannot meet the target. Shared by every search so their scores are
    /// bit-identical for the same counts.
    fn score_composition(
        &self,
        counts: &[usize],
        target: f64,
        order: &[usize],
    ) -> Option<(f64, f64, Vec<f64>)> {
        let (omega, served, mut qsum) = self.greedy_fill(counts, target, order);
        if served + 1e-9 < target {
            return None; // infeasible composition: cannot meet target
        }
        // Tie-break: prefer compositions whose idle capacity sits on
        // slower, higher-quality levels (cheap future headroom).
        let headroom_quality: f64 = counts
            .iter()
            .zip(&self.levels)
            .map(|(&c, l)| (c as f64 * l.peak_qpm) * l.quality)
            .sum();
        qsum += 1e-9 * headroom_quality;
        Some((qsum, served, omega))
    }

    /// Exact solve by enumerating worker compositions over levels.
    ///
    /// Complexity `C(W + V − 1, V − 1)` compositions; fine for the paper's
    /// 8-worker testbed and up to a few dozen workers. Ties prefer fewer
    /// distinct levels (fewer switches) and slower levels (higher
    /// quality headroom).
    ///
    /// # Panics
    /// Panics on invalid inputs (see [`AllocationProblem`]).
    pub fn solve_exact(&self) -> Allocation {
        self.validate();
        let n = self.levels.len();
        let capacity = self.max_capacity_qpm();
        let saturated = self.demand_qpm > capacity + 1e-9;
        let target = self.demand_qpm.min(capacity);

        let order = self.quality_order();
        let mut best: Option<(f64, f64, Vec<usize>, Vec<f64>)> = None;
        let mut counts = vec![0usize; n];
        self.enumerate(0, self.workers, &mut counts, &mut |counts| {
            let Some((qsum, served, omega)) = self.score_composition(counts, target, &order) else {
                return;
            };
            match &best {
                Some((bq, _, _, _)) if *bq >= qsum => {}
                _ => best = Some((qsum, served, counts.to_vec(), omega)),
            }
        });

        self.finish(best, capacity, saturated)
    }

    /// Picks the solver by cluster size: exhaustive enumeration up to
    /// [`FAST_SOLVER_THRESHOLD`] workers, the pruned branch-and-bound
    /// beyond. Both return the same allocation bit-for-bit; the switch is
    /// purely about wall-clock growth.
    pub fn solve(&self) -> Allocation {
        if self.workers <= FAST_SOLVER_THRESHOLD {
            self.solve_exact()
        } else {
            self.solve_fast()
        }
    }

    /// Like [`AllocationProblem::solve`], but reuses `cache`d
    /// branch-and-bound tables (Lagrangian dual candidates, suffix
    /// maxima) across solves whose ladder profiles are unchanged — the
    /// per-tick allocator case. Bit-identical to the uncached solve: the
    /// tables are a pure function of the level profiles, and debug builds
    /// assert cached tables against a fresh computation.
    pub fn solve_cached(&self, cache: &mut SolveCache) -> Allocation {
        if self.workers <= FAST_SOLVER_THRESHOLD {
            self.solve_exact()
        } else {
            self.solve_fast_cached(cache)
        }
    }

    /// Scalable solve: depth-first branch-and-bound over worker
    /// compositions with a certified upper bound (LP-style relaxations of
    /// the unassigned suffix), pruning subtrees that provably cannot beat
    /// the incumbent.
    ///
    /// Returns the **same allocation as [`AllocationProblem::solve_exact`],
    /// bit for bit**: leaves are scored by the identical shared scorer, the
    /// incumbent rule selects the lexicographically-smallest count vector
    /// among score ties (which is exactly the composition the exhaustive
    /// lexicographic enumeration keeps), and the bound is inflated by a
    /// relative epsilon so float noise can only cause extra exploration,
    /// never a wrong prune.
    ///
    /// # Panics
    /// Panics on invalid inputs (see [`AllocationProblem`]).
    pub fn solve_fast(&self) -> Allocation {
        self.solve_fast_cached(&mut SolveCache::new())
    }

    /// [`AllocationProblem::solve_fast`] with reusable search tables: the
    /// per-depth suffix aggregates and Lagrangian dual candidates depend
    /// only on the level profiles, so consecutive solves over an unchanged
    /// ladder (the allocator re-solving every tick) skip rebuilding them.
    ///
    /// # Panics
    /// Panics on invalid inputs (see [`AllocationProblem`]).
    pub fn solve_fast_cached(&self, cache: &mut SolveCache) -> Allocation {
        self.validate();
        let capacity = self.max_capacity_qpm();
        let saturated = self.demand_qpm > capacity + 1e-9;
        let target = self.demand_qpm.min(capacity);

        let tables = cache.tables_for(self);
        let mut search = FastSearch {
            counts: vec![0usize; self.levels.len()],
            scratch: Vec::with_capacity(self.levels.len() + 1),
            best: None,
            p: self,
            t: tables,
            target,
        };
        search.branch(0, self.workers, 0.0, 0.0);
        let best = search.best;
        self.finish(best, capacity, saturated)
    }

    /// Converts the best-found composition (or the all-fastest fallback
    /// when no composition can meet the target) into an [`Allocation`].
    fn finish(
        &self,
        best: Option<(f64, f64, Vec<usize>, Vec<f64>)>,
        capacity: f64,
        saturated: bool,
    ) -> Allocation {
        match best {
            Some((_, served, workers_per_level, omega_qpm)) => Allocation {
                workers_per_level,
                omega_qpm,
                served_qpm: served,
                saturated,
            },
            None => {
                // Demand exceeds even the all-fastest configuration: run
                // everything at the fastest level.
                let n = self.levels.len();
                let fastest = self.fastest_level();
                let mut workers_per_level = vec![0usize; n];
                workers_per_level[fastest] = self.workers;
                let mut omega_qpm = vec![0.0; n];
                omega_qpm[fastest] = capacity;
                Allocation {
                    workers_per_level,
                    omega_qpm,
                    served_qpm: capacity,
                    saturated,
                }
            }
        }
    }

    fn fastest_level(&self) -> usize {
        let mut idx = 0;
        for (i, l) in self.levels.iter().enumerate() {
            if l.peak_qpm > self.levels[idx].peak_qpm {
                idx = i;
            }
        }
        idx
    }

    fn enumerate(
        &self,
        level: usize,
        remaining: usize,
        counts: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]),
    ) {
        if level == self.levels.len() - 1 {
            counts[level] = remaining;
            visit(counts);
            counts[level] = 0;
            return;
        }
        for c in 0..=remaining {
            counts[level] = c;
            self.enumerate(level + 1, remaining - c, counts, visit);
        }
        counts[level] = 0;
    }

    /// The paper's ILP (Eq. 1), linearized: binaries `g_{v,w}` select the
    /// level of each worker; continuous `y_{v,w}` carry per-worker load.
    ///
    /// # Errors
    /// Propagates [`argus_ilp::SolveError`] (e.g. node-limit on very large
    /// clusters).
    pub fn solve_milp(&self) -> Result<Allocation, argus_ilp::SolveError> {
        self.validate();
        let n = self.levels.len();
        let w = self.workers;
        let capacity = self.max_capacity_qpm();
        let saturated = self.demand_qpm > capacity + 1e-9;
        let target = self.demand_qpm.min(capacity);

        let mut b = argus_ilp::ProblemBuilder::maximize();
        let mut g = vec![vec![]; n];
        let mut y = vec![vec![]; n];
        for (v, level) in self.levels.iter().enumerate() {
            for k in 0..w {
                g[v].push(b.add_binary(&format!("g_{v}_{k}"), 0.0));
                y[v].push(b.add_var(
                    &format!("y_{v}_{k}"),
                    argus_ilp::VarKind::Continuous,
                    0.0,
                    level.peak_qpm,
                    level.quality,
                ));
            }
        }
        // Each worker runs at most one level; load only on the assigned
        // level; total load equals the target.
        for k in 0..w {
            let assign: Vec<_> = (0..n).map(|v| (g[v][k], 1.0)).collect();
            b.add_le(&assign, 1.0);
            for v in 0..n {
                // y_{v,k} ≤ peak_v · g_{v,k}
                b.add_le(&[(y[v][k], 1.0), (g[v][k], -self.levels[v].peak_qpm)], 0.0);
            }
        }
        let all_loads: Vec<_> = (0..n)
            .flat_map(|v| (0..w).map(move |k| (v, k)))
            .map(|(v, k)| (y[v][k], 1.0))
            .collect();
        b.add_eq(&all_loads, target);
        // Symmetry breaking: workers are interchangeable, so force the
        // level indices assigned to workers to be non-decreasing.
        for k in 1..w {
            let mut terms: Vec<_> = (0..n).map(|v| (g[v][k - 1], v as f64)).collect();
            terms.extend((0..n).map(|v| (g[v][k], -(v as f64))));
            // Also require earlier workers to be assigned whenever later
            // ones are (no "gaps").
            let mut used: Vec<_> = (0..n).map(|v| (g[v][k - 1], 1.0)).collect();
            used.extend((0..n).map(|v| (g[v][k], -1.0)));
            b.add_le(&terms, 0.0);
            b.add_ge(&used, 0.0);
        }

        // Size the branch-and-bound budget to the instance: the default
        // budget is calibrated for the 8-worker testbed, and the node count
        // grows with the `n × w` binary grid.
        let node_limit = 200_000 + 2_000 * n * w;
        let sol = argus_ilp::solve_with_node_limit(&b.build(), node_limit)?;
        let mut workers_per_level = vec![0usize; n];
        let mut omega_qpm = vec![0.0; n];
        for v in 0..n {
            for k in 0..w {
                if sol.value(g[v][k]) > 0.5 {
                    workers_per_level[v] += 1;
                }
                omega_qpm[v] += sol.value(y[v][k]);
            }
        }
        let served_qpm = omega_qpm.iter().sum();
        Ok(Allocation {
            workers_per_level,
            omega_qpm,
            served_qpm,
            saturated,
        })
    }
}

/// Greedy relaxation fill: serve exactly `amount` from quality/capacity
/// chunks in quality-descending order, returning `Σ quality · take`. This
/// is the optimum of the chunk-capacitated LP with an equality demand
/// constraint, hence an upper bound for any integer completion whose
/// induced chunk loads satisfy the same capacities. Reorders `chunks` in
/// place (they are scratch space).
fn fill_bound(chunks: &mut [(f64, f64)], amount: f64) -> f64 {
    chunks.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut remaining = amount;
    let mut value = 0.0;
    for &(q, cap) in chunks.iter() {
        if remaining <= 0.0 {
            break;
        }
        let take = cap.min(remaining);
        value += q * take;
        remaining -= take;
    }
    value
}

/// Precomputed branch-and-bound tables for one ladder of level profiles:
/// the branching order plus every per-depth suffix aggregate the bound
/// needs. A pure function of [`AllocationProblem::levels`] — independent of
/// worker count and demand — which is what makes the tables reusable across
/// allocator ticks through a [`SolveCache`].
#[derive(Debug, Clone, PartialEq)]
struct FastTables {
    /// The level profiles these tables were computed from (the cache key).
    levels: Vec<LevelProfile>,
    /// Branching order: quality-descending (greedy_fill's consumption
    /// order), so the prefix of a node is exactly the high-quality chunk
    /// set the bound needs.
    order: Vec<usize>,
    /// `pmax[d]` = max peak over the free suffix starting at position `d`.
    pmax: Vec<f64>,
    /// `qmax[d]` = max quality over the free suffix at `d`.
    qmax: Vec<f64>,
    /// `pqmax[d]` = max peak·quality over the free suffix at `d`
    /// (clamped at 0 — parking a worker is never worse than nothing).
    pqmax: Vec<f64>,
    /// Per depth: Lagrangian candidates `(λ, best adjusted free quality)`
    /// for the worker-budget constraint of the suffix relaxation.
    lambdas: Vec<Vec<(f64, f64)>>,
}

/// Cross-solve cache of [`FastTables`], keyed by the exact level profiles.
///
/// The allocator re-solves Eq. 1 every tick; when the ladder (and hence
/// every profile) is unchanged between ticks, rebuilding the Lagrangian
/// candidate set is the dominant per-solve setup cost. The cache keeps a
/// small FIFO of recent ladders (heterogeneous fleets cycle one per
/// architecture pool). Lookups compare profiles exactly, so a hit can only
/// return tables bit-identical to a fresh computation — debug builds
/// assert this.
#[derive(Debug, Default)]
pub struct SolveCache {
    entries: Vec<FastTables>,
}

/// Retained ladders; heterogeneous fleets use one entry per (architecture,
/// strategy, retrieval-overhead) combination in flight.
const SOLVE_CACHE_CAP: usize = 8;

impl SolveCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// The tables for `p`'s ladder, computed on first sight and reused
    /// while the profiles stay bit-identical.
    fn tables_for(&mut self, p: &AllocationProblem) -> &FastTables {
        if let Some(i) = self.entries.iter().position(|e| e.levels == p.levels) {
            debug_assert_eq!(
                self.entries[i],
                FastTables::compute(p),
                "cached solver tables diverged from a fresh computation"
            );
            return &self.entries[i];
        }
        if self.entries.len() == SOLVE_CACHE_CAP {
            self.entries.remove(0);
        }
        self.entries.push(FastTables::compute(p));
        self.entries.last().expect("just pushed")
    }
}

impl FastTables {
    fn compute(p: &AllocationProblem) -> FastTables {
        let order = p.quality_order();
        let n = order.len();
        let level = |d: usize| &p.levels[order[d]];
        let suffix_max = |f: &dyn Fn(&LevelProfile) -> f64| -> Vec<f64> {
            (0..=n)
                .map(|d| {
                    (d..n)
                        .map(|i| f(level(i)))
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .collect()
        };
        let pmax = suffix_max(&|l| l.peak_qpm);
        let qmax = suffix_max(&|l| l.quality);
        let pqmax: Vec<f64> = suffix_max(&|l| l.peak_qpm * l.quality)
            .into_iter()
            .map(|x| x.max(0.0))
            .collect();
        // Dual vertex candidates per suffix: λ = p_v (q_v − q_u) > 0 for a
        // free level v and any level u; each pairs with the best
        // λ-adjusted free quality max_w (q_w − λ/p_w). Any λ ≥ 0 yields a
        // sound bound, so the set only needs to be useful, not complete.
        let lambdas: Vec<Vec<(f64, f64)>> = (0..=n)
            .map(|d| {
                let mut raw = Vec::new();
                for i in d..n {
                    let (qv, pv) = (level(i).quality, level(i).peak_qpm);
                    // A free level marginal against any level's quality.
                    for u in &p.levels {
                        raw.push(pv * (qv - u.quality));
                    }
                    // Two free levels simultaneously marginal.
                    for j in d..n {
                        let (qw, pw) = (level(j).quality, level(j).peak_qpm);
                        let denom = 1.0 / pv - 1.0 / pw;
                        if denom.abs() > 1e-12 {
                            raw.push((qv - qw) / denom);
                        }
                    }
                }
                let mut set: Vec<(f64, f64)> = raw
                    .into_iter()
                    .filter(|l| *l > 0.0 && l.is_finite())
                    .map(|lambda| {
                        let ahat = (d..n)
                            .map(|w| level(w).quality - lambda / level(w).peak_qpm)
                            .fold(f64::NEG_INFINITY, f64::max);
                        (lambda, ahat)
                    })
                    .collect();
                set.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                set.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-12 * (1.0 + a.0.abs()));
                set
            })
            .collect();
        FastTables {
            levels: p.levels.clone(),
            order,
            pmax,
            qmax,
            pqmax,
            lambdas,
        }
    }
}

/// Depth-first branch-and-bound state for [`AllocationProblem::solve_fast`].
///
/// Levels are branched in the quality-descending order of the (possibly
/// cached) [`FastTables`]; position `d` in the recursion fixes the count of
/// `order[d]`. All suffix aggregates the bound needs are precomputed per
/// depth so a node costs a handful of float ops unless it survives the
/// cheap bound.
struct FastSearch<'a> {
    p: &'a AllocationProblem,
    t: &'a FastTables,
    target: f64,
    counts: Vec<usize>,
    scratch: Vec<(f64, f64)>,
    best: Option<(f64, f64, Vec<usize>, Vec<f64>)>,
}

impl FastSearch<'_> {
    /// One node: positions `..depth` are fixed, `r` workers remain.
    /// `fixed_cap` / `fixed_headroom` are the running `Σ c·p` and
    /// `Σ c·p·q` of the fixed prefix.
    fn branch(&mut self, depth: usize, r: usize, fixed_cap: f64, fixed_headroom: f64) {
        let n = self.t.order.len();
        if depth == n - 1 {
            // The last position absorbs the remainder (compositions always
            // sum to the full worker count, exactly like the enumeration).
            self.counts[self.t.order[depth]] = r;
            if let Some((qsum, served, omega)) =
                self.p
                    .score_composition(&self.counts, self.target, &self.t.order)
            {
                let better = match &self.best {
                    Some((bq, _, bc, _)) => {
                        qsum > *bq || (qsum == *bq && self.counts.as_slice() < bc.as_slice())
                    }
                    None => true,
                };
                if better {
                    self.best = Some((qsum, served, self.counts.clone(), omega));
                }
            }
            self.counts[self.t.order[depth]] = 0;
            return;
        }

        // Try large counts first: on quality-sorted levels the optimum
        // loads the high-quality prefix heavily, so strong incumbents
        // appear early and the bound prunes the rest.
        let lvl = self.t.order[depth];
        let (pd, qd) = (self.p.levels[lvl].peak_qpm, self.p.levels[lvl].quality);
        for c in (0..=r).rev() {
            let cf = c as f64;
            let cap = fixed_cap + cf * pd;
            let headroom = fixed_headroom + cf * pd * qd;
            self.counts[lvl] = c;
            if !self.subtree_may_beat(depth + 1, r - c, cap, headroom) {
                continue;
            }
            self.branch(depth + 1, r - c, cap, headroom);
        }
        self.counts[lvl] = 0;
    }

    /// Whether the subtree with `r` free workers below a fixed prefix
    /// could contain a feasible composition scoring at least the
    /// incumbent. Conservative: `true` on any doubt.
    fn subtree_may_beat(
        &mut self,
        d: usize,
        r: usize,
        fixed_cap: f64,
        fixed_headroom: f64,
    ) -> bool {
        let rf = r as f64;
        // Feasibility: even the fastest-possible suffix cannot reach the
        // target (with slack, so borderline compositions still reach the
        // shared scorer and are rejected there, identically).
        if fixed_cap + rf * self.t.pmax[d] < self.target - 1e-6 {
            return false;
        }
        let Some((best_q, _, _, _)) = &self.best else {
            return true;
        };
        let best_q = *best_q;
        let headroom_ub = 1e-9 * (fixed_headroom + rf * self.t.pqmax[d]);

        // Cheap super-source bound first: the suffix pretends to carry its
        // best quality at its best per-worker throughput simultaneously.
        // Fixed levels enter as exact capacity chunks, so when the target
        // fits entirely in the prefix this bound is tight to the bit.
        let b1 = self.chunk_bound(d, (self.t.qmax[d], rf * self.t.pmax[d]));
        if inflate(b1 + headroom_ub) < best_q {
            return false;
        }

        // Second chance: Lagrangian bounds on the suffix worker budget.
        // For any λ ≥ 0, charging free load λ/p per query and refunding
        // λ·r upper-bounds the constrained optimum.
        for i in 0..self.t.lambdas[d].len() {
            let (lambda, ahat) = self.t.lambdas[d][i];
            let val = lambda * rf + self.chunk_bound(d, (ahat, f64::INFINITY));
            if inflate(val + headroom_ub) < best_q {
                return false;
            }
        }
        true
    }

    /// Greedy fill over the fixed prefix's capacity chunks plus one relaxed
    /// suffix source.
    fn chunk_bound(&mut self, d: usize, source: (f64, f64)) -> f64 {
        self.scratch.clear();
        for pos in 0..d {
            let lvl = self.t.order[pos];
            let l = &self.p.levels[lvl];
            self.scratch
                .push((l.quality, self.counts[lvl] as f64 * l.peak_qpm));
        }
        self.scratch.push(source);
        fill_bound(&mut self.scratch, self.target)
    }
}

/// Inflates an upper bound so float noise in the bound arithmetic can only
/// cause extra exploration, never a wrong prune. The margin sits well above
/// accumulated rounding error (~1e-16 relative per op) and well below the
/// 1e-9-scale headroom tie-break distinctions the search must preserve.
fn inflate(bound: f64) -> f64 {
    bound + bound.abs() * 1e-12 + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::{GpuArch, Strategy};
    use proptest::prelude::*;

    fn ac_problem(workers: usize, demand: f64) -> AllocationProblem {
        AllocationProblem::from_ladder(
            &ApproxLevel::ladder(Strategy::Ac),
            GpuArch::A100,
            0.02,
            workers,
            demand,
        )
    }

    #[test]
    fn light_load_uses_only_the_base_level() {
        // 8 workers at K=0 serve ~114 QPM; demand 80 fits entirely.
        let a = ac_problem(8, 80.0).solve_exact();
        assert!(!a.saturated);
        assert!((a.served_qpm - 80.0).abs() < 1e-6);
        assert!((a.omega_qpm[0] - 80.0).abs() < 1e-6, "{a:?}");
        for v in 1..6 {
            assert_eq!(a.omega_qpm[v], 0.0);
        }
    }

    #[test]
    fn heavy_load_pushes_to_deeper_levels() {
        let p = ac_problem(8, 200.0);
        let a = p.solve_exact();
        assert!(!a.saturated);
        assert!((a.served_qpm - 200.0).abs() < 1e-6);
        // Some load must sit on approximated levels.
        let approx_load: f64 = a.omega_qpm[1..].iter().sum();
        assert!(approx_load > 50.0, "{a:?}");
        // Quality is between the extremes.
        let q = a.mean_quality(&p.levels);
        assert!(q > 17.6 && q < 21.0, "quality {q}");
    }

    #[test]
    fn saturation_flag_and_capacity_cap() {
        let p = ac_problem(8, 500.0);
        let a = p.solve_exact();
        assert!(a.saturated);
        assert!((a.served_qpm - p.max_capacity_qpm()).abs() < 1e-6);
        // Everything at the deepest level.
        assert_eq!(a.workers_per_level[5], 8, "{a:?}");
    }

    #[test]
    fn quality_degrades_monotonically_with_load() {
        let mut last_q = f64::INFINITY;
        for demand in [60.0, 100.0, 140.0, 180.0, 215.0] {
            let p = ac_problem(8, demand);
            let a = p.solve_exact();
            let q = a.mean_quality(&p.levels);
            assert!(
                q <= last_q + 1e-9,
                "quality should fall with load: {demand} → {q} (prev {last_q})"
            );
            last_q = q;
        }
    }

    #[test]
    fn zero_demand_parks_everything_slow() {
        let a = ac_problem(4, 0.0).solve_exact();
        assert_eq!(a.served_qpm, 0.0);
        assert!(!a.saturated);
        let norm = a.omega_normalized();
        assert_eq!(norm[0], 1.0); // degenerate distribution defaults to base
    }

    #[test]
    fn milp_matches_exact_objective() {
        for demand in [50.0, 120.0, 160.0, 190.0] {
            let p = ac_problem(6, demand);
            let exact = p.solve_exact();
            let milp = p.solve_milp().expect("milp solves");
            let qe = exact.mean_quality(&p.levels) * exact.served_qpm;
            let qm = milp.mean_quality(&p.levels) * milp.served_qpm;
            assert!(
                (qe - qm).abs() < 1e-3 * qe.abs().max(1.0),
                "demand {demand}: exact {qe} vs milp {qm}"
            );
            assert!((exact.served_qpm - milp.served_qpm).abs() < 1e-4);
        }
    }

    #[test]
    fn sm_ladder_also_solves() {
        let p = AllocationProblem::from_ladder(
            &ApproxLevel::ladder(Strategy::Sm),
            GpuArch::A100,
            0.0,
            8,
            150.0,
        );
        let a = p.solve_exact();
        assert!((a.served_qpm - 150.0).abs() < 1e-6);
        assert_eq!(a.workers_per_level.iter().sum::<usize>(), 8);
    }

    #[test]
    fn retrieval_overhead_lowers_ac_capacity() {
        let healthy = ac_problem(8, 100.0);
        let congested = AllocationProblem::from_ladder(
            &ApproxLevel::ladder(Strategy::Ac),
            GpuArch::A100,
            1.5,
            8,
            100.0,
        );
        assert!(congested.max_capacity_qpm() < healthy.max_capacity_qpm() * 0.7);
    }

    #[test]
    fn omega_normalized_sums_to_one() {
        let a = ac_problem(8, 150.0).solve_exact();
        let norm = a.omega_normalized();
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slo_derating_scales_peaks_level_dependently() {
        let p = ac_problem(8, 100.0);
        let derated = p.clone().with_slo_derating(12.6);
        for (orig, der) in p.levels.iter().zip(&derated.levels) {
            assert!(der.peak_qpm < orig.peak_qpm, "{:?}", der.level);
            assert!(der.peak_qpm > 0.5 * orig.peak_qpm);
        }
        // Deep (fast) levels have more SLO slack → higher allowed ρ.
        let rho = |i: usize| derated.levels[i].peak_qpm / p.levels[i].peak_qpm;
        assert!(
            rho(5) > rho(0),
            "rho_deep {} vs rho_base {}",
            rho(5),
            rho(0)
        );
        // K=0 at 4.2 s against a 12.6 s SLO: ρ_max = 2·2/(1+2·2) = 0.8.
        assert!((rho(0) - 0.8).abs() < 0.02, "rho base {}", rho(0));
    }

    #[test]
    fn derated_problem_saturates_earlier() {
        let raw = ac_problem(8, 200.0);
        let derated = ac_problem(8, 200.0).with_slo_derating(12.6);
        assert!(derated.max_capacity_qpm() < raw.max_capacity_qpm());
        assert!(!raw.solve_exact().saturated);
    }

    #[test]
    #[should_panic(expected = "SLO must be positive")]
    fn derating_rejects_bad_slo() {
        let _ = ac_problem(2, 10.0).with_slo_derating(0.0);
    }

    #[test]
    #[should_panic(expected = "no workers")]
    fn zero_workers_rejected() {
        let mut p = ac_problem(1, 10.0);
        p.workers = 0;
        let _ = p.solve_exact();
    }

    #[test]
    fn fast_matches_exact_bit_for_bit_on_testbed_sizes() {
        for workers in [1, 2, 3, 5, 8, 13, 16] {
            for demand in [0.0, 40.0, 80.0, 130.0, 200.0, 500.0] {
                let p = ac_problem(workers, demand);
                let exact = p.solve_exact();
                let fast = p.solve_fast();
                assert_eq!(exact, fast, "W={workers} demand={demand}");
            }
        }
    }

    #[test]
    fn fast_matches_exact_on_sm_ladder() {
        for demand in [30.0, 90.0, 160.0, 240.0] {
            let p = AllocationProblem::from_ladder(
                &ApproxLevel::ladder(Strategy::Sm),
                GpuArch::A100,
                0.0,
                10,
                demand,
            )
            .with_slo_derating(12.6);
            assert_eq!(p.solve_exact(), p.solve_fast(), "demand={demand}");
        }
    }

    #[test]
    fn fast_handles_large_clusters() {
        // 128 workers, full 6-level ladder: far beyond what enumeration
        // can visit; the search must still return a feasible optimum.
        for demand in [400.0, 1500.0, 2600.0] {
            let p = ac_problem(128, demand);
            let a = p.solve_fast();
            let expect = demand.min(p.max_capacity_qpm());
            assert!(
                (a.served_qpm - expect).abs() < 1e-6,
                "demand={demand} {a:?}"
            );
            assert_eq!(a.workers_per_level.iter().sum::<usize>(), 128);
            for (v, w) in a.omega_qpm.iter().enumerate() {
                let cap = a.workers_per_level[v] as f64 * p.levels[v].peak_qpm;
                assert!(*w <= cap + 1e-6);
            }
            // Bit determinism of the search itself.
            assert_eq!(a, p.solve_fast());
        }
    }

    #[test]
    fn solve_dispatches_on_worker_count() {
        let small = ac_problem(8, 120.0);
        assert_eq!(small.solve(), small.solve_exact());
        let large = ac_problem(FAST_SOLVER_THRESHOLD + 1, 300.0);
        assert_eq!(large.solve(), large.solve_fast());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The branch-and-bound returns the enumeration's allocation
        /// bit-for-bit on random instances.
        #[test]
        fn prop_fast_matches_exact(
            workers in 1usize..14,
            demand in 0.0f64..400.0,
            q in proptest::collection::vec(15.0f64..22.0, 4),
            peak in proptest::collection::vec(8.0f64..40.0, 4),
        ) {
            let levels: Vec<LevelProfile> = (0..4)
                .map(|i| LevelProfile {
                    level: ApproxLevel::ladder(Strategy::Ac)[i],
                    quality: q[i],
                    peak_qpm: peak[i],
                })
                .collect();
            let p = AllocationProblem { levels, workers, demand_qpm: demand };
            prop_assert_eq!(p.solve_exact(), p.solve_fast());
        }

        /// Exact and MILP solvers agree on objective for random instances.
        #[test]
        fn prop_exact_matches_milp(
            workers in 2usize..6,
            demand in 10.0f64..200.0,
            q in proptest::collection::vec(15.0f64..22.0, 3),
            peak in proptest::collection::vec(10.0f64..40.0, 3),
        ) {
            let levels: Vec<LevelProfile> = (0..3)
                .map(|i| LevelProfile {
                    level: ApproxLevel::ladder(Strategy::Ac)[i],
                    quality: q[i],
                    peak_qpm: peak[i],
                })
                .collect();
            let p = AllocationProblem { levels, workers, demand_qpm: demand };
            let exact = p.solve_exact();
            let milp = p.solve_milp().unwrap();
            let oe: f64 = exact.omega_qpm.iter().zip(&p.levels).map(|(w, l)| w * l.quality).sum();
            let om: f64 = milp.omega_qpm.iter().zip(&p.levels).map(|(w, l)| w * l.quality).sum();
            prop_assert!((oe - om).abs() < 1e-3 * oe.abs().max(1.0),
                "exact {oe} milp {om} ({p:?})");
        }

        /// The allocation always serves min(demand, capacity) and never
        /// exceeds per-level capacity.
        #[test]
        fn prop_allocation_feasible(
            workers in 1usize..10,
            demand in 0.0f64..400.0,
        ) {
            let p = ac_problem(workers, demand);
            let a = p.solve_exact();
            let expect = demand.min(p.max_capacity_qpm());
            prop_assert!((a.served_qpm - expect).abs() < 1e-6);
            for (v, w) in a.omega_qpm.iter().enumerate() {
                let cap = a.workers_per_level[v] as f64 * p.levels[v].peak_qpm;
                prop_assert!(*w <= cap + 1e-6);
            }
        }
    }
}
