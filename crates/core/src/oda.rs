//! The Optimized Distribution Aligner (Algorithm 1) and the PASM (§4.3).
//!
//! ODA aligns the affinity distribution `φ(v)` (what prompts *want*) with
//! the load distribution `ω(v)` (what the solver decided the cluster must
//! serve), producing the **Probabilistic Approximation Shift Map**: a
//! row-stochastic matrix `P(v′ | v)` used at runtime to redirect a prompt
//! whose optimal level is `v` to a concrete serving level `v′`.
//!
//! Properties (all tested):
//!
//! * exact conversion: `φᵀ P = ω`;
//! * shifting *left* (to a slower, less approximate level) is free;
//!   shifting *right* degrades quality super-linearly in the gap, so ODA
//!   always pulls deficits from the **nearest** slower level first;
//! * under any monotone super-linear degradation profile, the PASM attains
//!   the minimum of Eq. 2 — verified against an LP transportation solve.
//!
//! Implementation note: the paper composes per-step shift probabilities
//! into end-to-end transitions. We instead track, for every *origin*
//! level, where its probability mass currently sits while executing the
//! same shift sequence; the final mass matrix normalized by `φ` *is* the
//! composed PASM, with conservation guaranteed by construction.
//!
//! **Fault path.** ODA is the compute plane's half of the fault response:
//! after a worker crash the next allocator tick re-solves Eq. 1 over the
//! survivors and the PASM re-aligns `φ` to the shrunken `ω` (Fig. 20a).
//! The retrieval plane rebalances in the same breath —
//! [`crate::cacheplane::CachePlane::on_worker_fail`] fails the dead
//! worker's shard replicas over to their surviving copies *before* the
//! lost jobs are rerouted, so re-dispatched prompts already see the
//! post-failover cache. Both halves degrade service (deeper
//! approximation, lower hit-rate) rather than dropping it.

use std::fmt;

use argus_quality::DegradationProfile;

/// Failure modes of [`oda`] / [`Pasm`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PasmError {
    /// The two distributions have different lengths (or are empty).
    LengthMismatch,
    /// A distribution has negative/NaN entries or zero total mass.
    InvalidDistribution,
}

impl fmt::Display for PasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PasmError::LengthMismatch => "phi and omega must have equal non-zero length",
            PasmError::InvalidDistribution => {
                "distributions must be non-negative with positive total mass"
            }
        })
    }
}

impl std::error::Error for PasmError {}

/// The Probabilistic Approximation Shift Map: `p[v][v′] = P(v′ | v)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Pasm {
    p: Vec<Vec<f64>>,
}

impl Pasm {
    /// The identity map over `n` levels (no redistribution).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "PASM needs at least one level");
        let p = (0..n)
            .map(|i| {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                row
            })
            .collect();
        Pasm { p }
    }

    /// The prompt-agnostic baseline: every prompt is redirected according
    /// to `ω` regardless of its optimal level (the "random redistribution"
    /// of Fig. 10 and of Proteus-style systems).
    ///
    /// # Errors
    /// Returns [`PasmError::InvalidDistribution`] on bad input.
    pub fn proportional(omega: &[f64]) -> Result<Self, PasmError> {
        let omega = normalize(omega)?;
        let n = omega.len();
        Ok(Pasm { p: vec![omega; n] })
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether the map is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Transition probability `P(to | from)`.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn transition(&self, from: usize, to: usize) -> f64 {
        self.p[from][to]
    }

    /// Samples a serving level for a prompt whose optimal level is `from`.
    ///
    /// # Panics
    /// Panics if `from` is out of range.
    pub fn sample<R: rand::Rng + ?Sized>(&self, from: usize, rng: &mut R) -> usize {
        argus_des::rng::weighted_index(rng, &self.p[from]).unwrap_or(from)
    }

    /// Applies the map to a distribution: returns `φᵀ P`.
    ///
    /// # Panics
    /// Panics if `phi.len() != self.len()`.
    pub fn apply(&self, phi: &[f64]) -> Vec<f64> {
        assert_eq!(phi.len(), self.len(), "distribution length mismatch");
        let n = self.len();
        let mut out = vec![0.0; n];
        for (i, &mass) in phi.iter().enumerate() {
            for (j, &p) in self.p[i].iter().enumerate() {
                out[j] += mass * p;
            }
        }
        out
    }

    /// Evaluates the Eq. 2 objective: expected quality degradation of this
    /// redistribution under a profiled degradation `d(v′, v)`.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn expected_degradation(&self, phi: &[f64], d: &DegradationProfile) -> f64 {
        assert_eq!(phi.len(), self.len(), "distribution length mismatch");
        assert_eq!(d.len(), self.len(), "degradation profile length mismatch");
        let mut total = 0.0;
        for (i, &mass) in phi.iter().enumerate() {
            for j in 0..self.len() {
                total += mass * self.p[i][j] * d.cost(i, j);
            }
        }
        total
    }
}

fn normalize(v: &[f64]) -> Result<Vec<f64>, PasmError> {
    if v.is_empty() {
        return Err(PasmError::LengthMismatch);
    }
    if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return Err(PasmError::InvalidDistribution);
    }
    let sum: f64 = v.iter().sum();
    if sum <= 0.0 {
        return Err(PasmError::InvalidDistribution);
    }
    Ok(v.iter().map(|x| x / sum).collect())
}

/// Runs the Optimized Distribution Aligner (Algorithm 1).
///
/// `phi` and `omega` are the affinity and target load distributions over
/// the same ladder, ordered slowest (least approximate) first. Both are
/// normalized internally.
///
/// # Errors
/// Returns [`PasmError`] on mismatched lengths or invalid distributions.
pub fn oda(phi: &[f64], omega: &[f64]) -> Result<Pasm, PasmError> {
    if phi.len() != omega.len() || phi.is_empty() {
        return Err(PasmError::LengthMismatch);
    }
    let phi_n = normalize(phi)?;
    let omega_n = normalize(omega)?;
    let n = phi_n.len();

    // mass[o][v]: probability mass of origin o currently sitting at v.
    let mut mass: Vec<Vec<f64>> = (0..n)
        .map(|o| {
            let mut row = vec![0.0; n];
            row[o] = phi_n[o];
            row
        })
        .collect();
    let mut cur = phi_n.clone();

    // Move `amount` of mass (proportionally across origins) from level
    // `from` to level `to`.
    let shift =
        |mass: &mut Vec<Vec<f64>>, cur: &mut Vec<f64>, from: usize, to: usize, amount: f64| {
            if amount <= 0.0 || cur[from] <= 0.0 {
                return;
            }
            let frac = (amount / cur[from]).min(1.0);
            for origin_row in mass.iter_mut() {
                let moved = origin_row[from] * frac;
                origin_row[from] -= moved;
                origin_row[to] += moved;
            }
            cur[from] -= amount;
            cur[to] += amount;
        };

    // Algorithm 1: iterate levels fastest → slowest (right to left).
    for i in (1..n).rev() {
        if cur[i] > omega_n[i] {
            // Surplus affinity: shift the excess one step left (slower /
            // better — no quality degradation).
            let excess = cur[i] - omega_n[i];
            shift(&mut mass, &mut cur, i, i - 1, excess);
        } else {
            // Deficit: pull prompts rightward from the nearest slower
            // levels (degradation grows super-linearly with distance, so
            // nearest-first is optimal).
            let mut need = omega_n[i] - cur[i];
            let mut m = 1;
            while need > 1e-15 && m <= i {
                let take = cur[i - m].min(need);
                shift(&mut mass, &mut cur, i - m, i, take);
                need -= take;
                m += 1;
            }
        }
    }

    // Normalize each origin's mass row into transition probabilities.
    let p = (0..n)
        .map(|o| {
            if phi_n[o] > 0.0 {
                mass[o].iter().map(|&x| x / phi_n[o]).collect()
            } else {
                // Origins with no affinity mass: identity row.
                let mut row = vec![0.0; n];
                row[o] = 1.0;
                row
            }
        })
        .collect();
    Ok(Pasm { p })
}

/// The Earth-Mover's-Distance aligner the paper argues against (§4.3):
/// minimizes the *symmetric* transport cost `|i − j|`, ignoring that
/// leftward moves are free and rightward degradation is super-linear.
///
/// Produced for the `abl_design_choices` ablation: on asymmetric
/// degradation profiles its plans pay strictly more quality loss than
/// ODA's, because it happily trades cheap leftward moves for expensive
/// rightward ones of equal distance.
///
/// # Errors
/// Returns [`PasmError`] on invalid distributions, and falls back to the
/// proportional map if the internal transport LP fails numerically.
pub fn emd_aligner(phi: &[f64], omega: &[f64]) -> Result<Pasm, PasmError> {
    if phi.len() != omega.len() || phi.is_empty() {
        return Err(PasmError::LengthMismatch);
    }
    let phi_n = normalize(phi)?;
    let omega_n = normalize(omega)?;
    let n = phi_n.len();

    // Transportation LP with symmetric |i − j| costs.
    let mut b = argus_ilp::ProblemBuilder::minimize();
    let mut t = vec![vec![]; n];
    for (i, row) in t.iter_mut().enumerate() {
        for j in 0..n {
            row.push(b.add_var(
                &format!("t{i}{j}"),
                argus_ilp::VarKind::Continuous,
                0.0,
                f64::INFINITY,
                (i as f64 - j as f64).abs(),
            ));
        }
    }
    for i in 0..n {
        let row: Vec<_> = (0..n).map(|j| (t[i][j], 1.0)).collect();
        b.add_eq(&row, phi_n[i]);
        let col: Vec<_> = (0..n).map(|j| (t[j][i], 1.0)).collect();
        b.add_eq(&col, omega_n[i]);
    }
    let Ok(sol) = b.build().solve() else {
        return Pasm::proportional(&omega_n);
    };
    let p = (0..n)
        .map(|i| {
            if phi_n[i] > 0.0 {
                (0..n)
                    .map(|j| (sol.value(t[i][j]) / phi_n[i]).max(0.0))
                    .collect()
            } else {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                row
            }
        })
        .collect();
    Ok(Pasm { p })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_when_distributions_match() {
        let phi = [0.3, 0.4, 0.3];
        let pasm = oda(&phi, &phi).unwrap();
        for i in 0..3 {
            assert!((pasm.transition(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rows_are_stochastic_and_conversion_exact() {
        let phi = [0.50, 0.20, 0.15, 0.10, 0.05, 0.00];
        let omega = [0.10, 0.15, 0.20, 0.25, 0.20, 0.10];
        let pasm = oda(&phi, &omega).unwrap();
        for i in 0..6 {
            let row_sum: f64 = (0..6).map(|j| pasm.transition(i, j)).sum();
            assert!((row_sum - 1.0).abs() < 1e-9, "row {i}: {row_sum}");
        }
        assert_close(&pasm.apply(&phi), &omega, 1e-9);
    }

    #[test]
    fn surplus_shifts_left_without_degradation() {
        // More prompts want the fast level than it can serve: the excess
        // runs slower — no rightward moves at all.
        let phi = [0.2, 0.8];
        let omega = [0.6, 0.4];
        let pasm = oda(&phi, &omega).unwrap();
        assert_eq!(pasm.transition(0, 1), 0.0); // nothing pushed rightward
        assert!((pasm.transition(1, 0) - 0.5).abs() < 1e-12);
        let d = DegradationProfile::synthetic(2, 2.0, 1.0);
        assert_eq!(pasm.expected_degradation(&phi, &d), 0.0);
    }

    #[test]
    fn deficit_pulls_from_nearest_left_first() {
        // Deficit at the fastest level; mass available at levels 0 and 1.
        let phi = [0.5, 0.3, 0.2];
        let omega = [0.2, 0.2, 0.6];
        let pasm = oda(&phi, &omega).unwrap();
        // Level 1 (nearest) donates fully before level 0 is touched more
        // than necessary: the rightward flow into level 2 comes from
        // level 1 first.
        let from1 = phi[1] * pasm.transition(1, 2);
        let from0 = phi[0] * pasm.transition(0, 2);
        assert!(from1 > 0.0);
        // Total inflow = 0.4; nearest-first means level 1 gives its whole
        // surplus before level 0 jumps two rungs.
        assert!((from0 + from1 + 0.2 - 0.6).abs() < 1e-9);
        let d = DegradationProfile::synthetic(3, 2.0, 1.0);
        let cost = pasm.expected_degradation(&phi, &d);
        let rand_cost = Pasm::proportional(&omega)
            .unwrap()
            .expected_degradation(&phi, &d);
        assert!(cost < rand_cost, "oda {cost} vs random {rand_cost}");
    }

    #[test]
    fn zero_affinity_level_gets_identity_row() {
        let phi = [0.7, 0.0, 0.3];
        let omega = [0.4, 0.3, 0.3];
        let pasm = oda(&phi, &omega).unwrap();
        assert_close(&pasm.apply(&phi), &omega, 1e-9);
        // Origin 1 has no mass; its row is the identity by convention.
        assert_eq!(pasm.transition(1, 1), 1.0);
    }

    #[test]
    fn proportional_baseline_also_converts() {
        let phi = [0.6, 0.4];
        let omega = [0.25, 0.75];
        let p = Pasm::proportional(&omega).unwrap();
        assert_close(&p.apply(&phi), &omega, 1e-12);
    }

    #[test]
    fn error_cases() {
        assert_eq!(oda(&[0.5], &[0.5, 0.5]), Err(PasmError::LengthMismatch));
        assert_eq!(oda(&[], &[]), Err(PasmError::LengthMismatch));
        assert_eq!(
            oda(&[0.0, 0.0], &[0.5, 0.5]),
            Err(PasmError::InvalidDistribution)
        );
        assert_eq!(
            oda(&[-0.1, 1.1], &[0.5, 0.5]),
            Err(PasmError::InvalidDistribution)
        );
        assert_eq!(
            Pasm::proportional(&[f64::NAN]),
            Err(PasmError::InvalidDistribution)
        );
        assert!(!PasmError::LengthMismatch.to_string().is_empty());
    }

    #[test]
    fn sampling_follows_the_map() {
        use rand::SeedableRng;
        let phi = [0.5, 0.5];
        let omega = [0.1, 0.9];
        let pasm = oda(&phi, &omega).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut hits = [0usize; 2];
        for _ in 0..20_000 {
            hits[pasm.sample(0, &mut rng)] += 1;
        }
        let frac1 = hits[1] as f64 / 20_000.0;
        assert!((frac1 - pasm.transition(0, 1)).abs() < 0.02);
    }

    /// Optimal transport reference: minimize Σ T_ij · d(i,j) subject to
    /// row sums = φ and column sums = ω, via the LP solver.
    #[allow(clippy::needless_range_loop)] // T_ij index math reads clearer
    fn transport_optimum(phi: &[f64], omega: &[f64], d: &DegradationProfile) -> f64 {
        let n = phi.len();
        let mut b = argus_ilp::ProblemBuilder::minimize();
        let mut t = vec![vec![]; n];
        for i in 0..n {
            for j in 0..n {
                t[i].push(b.add_var(
                    &format!("t{i}{j}"),
                    argus_ilp::VarKind::Continuous,
                    0.0,
                    f64::INFINITY,
                    d.cost(i, j),
                ));
            }
        }
        for i in 0..n {
            let row: Vec<_> = (0..n).map(|j| (t[i][j], 1.0)).collect();
            b.add_eq(&row, phi[i]);
            let col: Vec<_> = (0..n).map(|j| (t[j][i], 1.0)).collect();
            b.add_eq(&col, omega[i]);
        }
        b.build().solve().expect("transport LP solves").objective
    }

    #[test]
    fn emd_aligner_converts_but_pays_more_than_oda() {
        // Surplus on the fast side: ODA shifts it left for free; EMD may
        // instead move slow-side mass right (same |i−j| cost to it) and
        // pay real degradation.
        let phi = [0.10, 0.20, 0.30, 0.40];
        let omega = [0.30, 0.30, 0.20, 0.20];
        let d = DegradationProfile::synthetic(4, 2.0, 1.0);
        let emd = emd_aligner(&phi, &omega).unwrap();
        let best = oda(&phi, &omega).unwrap();
        // Both convert φ to ω exactly.
        for (a, b) in emd.apply(&phi).iter().zip(&omega) {
            assert!((a - b).abs() < 1e-6, "emd conversion off");
        }
        // ODA never pays more, and here strictly less is impossible since
        // this instance needs no rightward moves at all.
        assert_eq!(best.expected_degradation(&phi, &d), 0.0);
        assert!(emd.expected_degradation(&phi, &d) >= 0.0);
        // An instance with both directions in play separates them.
        let phi2 = [0.40, 0.05, 0.50, 0.05];
        let omega2 = [0.15, 0.35, 0.15, 0.35];
        let oda_cost = oda(&phi2, &omega2).unwrap().expected_degradation(&phi2, &d);
        let emd_cost = emd_aligner(&phi2, &omega2)
            .unwrap()
            .expected_degradation(&phi2, &d);
        assert!(
            oda_cost <= emd_cost + 1e-9,
            "oda {oda_cost} vs emd {emd_cost}"
        );
    }

    #[test]
    fn emd_error_cases() {
        assert_eq!(
            emd_aligner(&[0.5], &[0.5, 0.5]),
            Err(PasmError::LengthMismatch)
        );
        assert_eq!(
            emd_aligner(&[0.0, 0.0], &[1.0, 0.0]),
            Err(PasmError::InvalidDistribution)
        );
    }

    #[test]
    fn oda_attains_transport_optimum_on_known_instance() {
        let phi = [0.45, 0.25, 0.15, 0.10, 0.05];
        let omega = [0.05, 0.15, 0.25, 0.30, 0.25];
        let d = DegradationProfile::synthetic(5, 2.0, 0.7);
        let pasm = oda(&phi, &omega).unwrap();
        let got = pasm.expected_degradation(&phi, &d);
        let opt = transport_optimum(&phi, &omega, &d);
        assert!((got - opt).abs() < 1e-6, "oda {got} vs LP {opt}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(80))]
        /// ODA is optimal against the LP transport bound for random
        /// distributions and super-linear degradation profiles.
        #[test]
        fn prop_oda_matches_lp_transport(
            raw_phi in proptest::collection::vec(0.0f64..1.0, 4),
            raw_omega in proptest::collection::vec(0.01f64..1.0, 4),
            power in 1.0f64..3.0,
        ) {
            prop_assume!(raw_phi.iter().sum::<f64>() > 0.05);
            let s1: f64 = raw_phi.iter().sum();
            let s2: f64 = raw_omega.iter().sum();
            let phi: Vec<f64> = raw_phi.iter().map(|x| x / s1).collect();
            let omega: Vec<f64> = raw_omega.iter().map(|x| x / s2).collect();
            let d = DegradationProfile::synthetic(4, power, 1.0);
            let pasm = oda(&phi, &omega).unwrap();
            // Conversion is exact.
            let applied = pasm.apply(&phi);
            for (a, b) in applied.iter().zip(&omega) {
                prop_assert!((a - b).abs() < 1e-7);
            }
            // Cost optimality.
            let got = pasm.expected_degradation(&phi, &d);
            let opt = transport_optimum(&phi, &omega, &d);
            prop_assert!(got <= opt + 1e-6, "oda {got} vs LP {opt}");
        }

        /// ODA never does worse than the prompt-agnostic proportional map.
        #[test]
        fn prop_oda_beats_random(
            raw_phi in proptest::collection::vec(0.01f64..1.0, 5),
            raw_omega in proptest::collection::vec(0.01f64..1.0, 5),
        ) {
            let d = DegradationProfile::synthetic(5, 2.0, 1.0);
            let s1: f64 = raw_phi.iter().sum();
            let phi: Vec<f64> = raw_phi.iter().map(|x| x / s1).collect();
            let pasm = oda(&phi, &raw_omega).unwrap();
            let random = Pasm::proportional(&raw_omega).unwrap();
            prop_assert!(
                pasm.expected_degradation(&phi, &d)
                    <= random.expected_degradation(&phi, &d) + 1e-9
            );
        }
    }
}
