//! Evaluation metrics (§5.1).
//!
//! Three headline metrics, recorded per simulated minute and aggregated:
//!
//! * **Throughput** — queries completed per minute;
//! * **Effective accuracy** — mean PickScore over queries completed within
//!   the latency SLO;
//! * **SLO violation ratio** — fraction of queries exceeding the SLO
//!   (3× the SD-XL latency, i.e. 12.6 s end-to-end), including queries
//!   lost to failures.
//!
//! Plus the §5.7 auxiliaries: relative quality, cluster utilization,
//! model-switch counts and cache-retrieval latency — and, for the cache
//! plane, whole-run [`RetrievalStats`]: per-level hit/miss/failure counts
//! plus retrieval-latency mean and p99, so retrieval experiments are
//! measurable without re-running the simulation.

use argus_cachestore::FetchStatus;
use argus_des::{SimDuration, SimTime};
use argus_models::{ApproxLevel, GpuArch};

/// The latency SLO multiplier over the largest model's inference time
/// (§5.1, following Proteus).
pub const SLO_MULTIPLIER: f64 = 3.0;

/// One minute of system telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MinuteRecord {
    /// Minute index from simulation start.
    pub minute: u64,
    /// Queries that arrived this minute (offered load).
    pub offered: u64,
    /// Queries completed this minute (throughput).
    pub completed: u64,
    /// Completions that violated the latency SLO, plus lost queries.
    pub violations: u64,
    /// Sum of PickScores over in-SLO completions.
    pub quality_sum: f64,
    /// Sum of (score / base score) over in-SLO completions.
    pub relative_quality_sum: f64,
    /// In-SLO completions (denominator for the two sums above).
    pub in_slo: u64,
    /// Mean cluster utilization sampled at the minute boundary.
    pub utilization: f64,
    /// Model loads (weight movements) started this minute.
    pub model_loads: u64,
    /// Mean cache-retrieval latency this minute (seconds; 0 if no
    /// retrievals).
    pub retrieval_latency_sum: f64,
    /// Number of cache retrievals this minute.
    pub retrievals: u64,
}

impl MinuteRecord {
    /// Mean PickScore of in-SLO completions ("effective accuracy").
    pub fn effective_accuracy(&self) -> f64 {
        if self.in_slo == 0 {
            0.0
        } else {
            self.quality_sum / self.in_slo as f64
        }
    }

    /// Mean relative quality (score / prompt's best score) of in-SLO
    /// completions, in `[0, ~1]`.
    pub fn relative_quality(&self) -> f64 {
        if self.in_slo == 0 {
            0.0
        } else {
            self.relative_quality_sum / self.in_slo as f64
        }
    }

    /// Violations over offered queries this minute.
    pub fn violation_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.violations as f64 / self.offered as f64
        }
    }

    /// Mean retrieval latency in seconds.
    pub fn mean_retrieval_latency(&self) -> f64 {
        if self.retrievals == 0 {
            0.0
        } else {
            self.retrieval_latency_sum / self.retrievals as f64
        }
    }
}

/// Whole-run aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunTotals {
    /// Total queries offered.
    pub offered: u64,
    /// Total completions.
    pub completed: u64,
    /// Total SLO violations (late completions + lost queries).
    pub violations: u64,
    /// Sum of PickScores over in-SLO completions.
    pub quality_sum: f64,
    /// Sum of relative qualities over in-SLO completions.
    pub relative_quality_sum: f64,
    /// In-SLO completions.
    pub in_slo: u64,
    /// Total model loads.
    pub model_loads: u64,
}

impl RunTotals {
    /// Mean PickScore over in-SLO completions.
    pub fn effective_accuracy(&self) -> f64 {
        if self.in_slo == 0 {
            0.0
        } else {
            self.quality_sum / self.in_slo as f64
        }
    }

    /// Mean relative quality over in-SLO completions.
    pub fn relative_quality(&self) -> f64 {
        if self.in_slo == 0 {
            0.0
        } else {
            self.relative_quality_sum / self.in_slo as f64
        }
    }

    /// Fraction of offered queries that violated the SLO.
    pub fn slo_violation_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.violations as f64 / self.offered as f64
        }
    }

    /// Mean throughput in QPM over `minutes`.
    pub fn mean_throughput_qpm(&self, minutes: f64) -> f64 {
        if minutes <= 0.0 {
            0.0
        } else {
            self.completed as f64 / minutes
        }
    }
}

/// One architecture pool's share of a run's outcomes
/// (`RunOutcome::pools`): heterogeneous experiments read pool behaviour
/// directly instead of inferring it from cluster-wide aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolStats {
    /// The pool's GPU architecture.
    pub gpu: GpuArch,
    /// Configured worker count of the pool.
    pub workers: usize,
    /// Jobs completed on this pool's workers.
    pub completions: u64,
    /// Completions on this pool's workers that violated the latency SLO
    /// (jobs lost before reaching a worker have no pool and are counted
    /// only in the run totals).
    pub violations: u64,
    /// Mean alive workers holding (or loading toward) a level across
    /// allocator ticks — how much of the pool the planner actually used.
    pub mean_allocated_workers: f64,
}

impl PoolStats {
    /// Violations over completions on this pool, in `[0, 1]`.
    pub fn violation_ratio(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.violations as f64 / self.completions as f64
        }
    }
}

/// Cache-lookup outcome counts for one approximation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelCacheCounts {
    /// Lookups that retrieved a usable intermediate state.
    pub hits: u64,
    /// Lookups whose network leg worked but found no state.
    pub misses: u64,
    /// Lookups lost to congestion drops or outage timeouts.
    pub failures: u64,
}

/// Whole-run retrieval-plane telemetry: per-level cache outcomes plus the
/// retrieval-latency distribution the strategy switcher monitors (§4.6).
///
/// A *lookup* that finds no usable neighbour (empty or fault-degraded
/// probe set, or a similarity too low to reuse) counts as a miss even
/// though no store round trip happened — that is precisely the observable
/// a dead cache shard produces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RetrievalStats {
    /// Cache outcomes keyed by the worker's assigned AC level at lookup
    /// time, sorted by [`ApproxLevel::ordinal`].
    pub per_level: Vec<(ApproxLevel, LevelCacheCounts)>,
    /// Cache-store fetches (the latency sample count; no-neighbour misses
    /// never reach the store, so this can be below `hits + misses`).
    pub lookups: u64,
    /// Mean end-to-end retrieval latency in seconds (0 with no lookups).
    pub mean_latency: f64,
    /// 99th-percentile retrieval latency in seconds (0 with no lookups).
    pub p99_latency: f64,
    /// Serving-time index inserts (one per persisted completion;
    /// pre-deployment warm-up writes are not charged).
    pub inserts: u64,
    /// Replica copies written across all inserts (≥ `inserts` under
    /// R-way replication — the cache plane's write amplification).
    pub replica_writes: u64,
    /// Replica writes that crossed the network: copies hosted on a worker
    /// other than the one that produced the state, plus every write to an
    /// off-cluster (monolithic) index. Writes are asynchronous (§4.7), so
    /// hops are charged to this budget counter, not to job latency.
    pub remote_write_hops: u64,
}

impl RetrievalStats {
    /// Total hits across levels.
    pub fn hits(&self) -> u64 {
        self.per_level.iter().map(|&(_, c)| c.hits).sum()
    }

    /// Total misses across levels (failures counted separately).
    pub fn misses(&self) -> u64 {
        self.per_level.iter().map(|&(_, c)| c.misses).sum()
    }

    /// Total failed lookups across levels.
    pub fn failures(&self) -> u64 {
        self.per_level.iter().map(|&(_, c)| c.failures).sum()
    }

    /// Hits over all lookups, in `[0, 1]` (0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses() + self.failures();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// Streaming collector turning per-event observations into per-minute
/// records plus run totals.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    slo: SimDuration,
    current: MinuteRecord,
    minutes: Vec<MinuteRecord>,
    totals: RunTotals,
    cache_counts: Vec<(ApproxLevel, LevelCacheCounts)>,
    lookup_latencies: Vec<f64>,
    inserts: u64,
    replica_writes: u64,
    remote_write_hops: u64,
}

impl MetricsCollector {
    /// Creates a collector with the SLO derived from the base model
    /// latency: `SLO_MULTIPLIER × base_latency`.
    pub fn new(base_latency: SimDuration) -> Self {
        MetricsCollector {
            slo: base_latency * SLO_MULTIPLIER,
            current: MinuteRecord::default(),
            minutes: Vec::new(),
            totals: RunTotals::default(),
            cache_counts: Vec::new(),
            lookup_latencies: Vec::new(),
            inserts: 0,
            replica_writes: 0,
            remote_write_hops: 0,
        }
    }

    /// The SLO deadline.
    pub fn slo(&self) -> SimDuration {
        self.slo
    }

    fn minute_of(&self, t: SimTime) -> u64 {
        t.as_micros() / 60_000_000
    }

    /// Rolls the current minute forward until it covers `t`.
    fn roll_to(&mut self, t: SimTime) {
        let m = self.minute_of(t);
        while self.current.minute < m {
            let mut rec = self.current;
            rec.utilization = self.current.utilization;
            self.minutes.push(rec);
            self.current = MinuteRecord {
                minute: self.current.minute + 1,
                ..MinuteRecord::default()
            };
        }
    }

    /// Records a query arrival.
    pub fn on_arrival(&mut self, t: SimTime) {
        self.roll_to(t);
        self.current.offered += 1;
        self.totals.offered += 1;
    }

    /// Records a completion with its end-to-end latency, PickScore and the
    /// prompt's base (best-achievable) score.
    pub fn on_completion(&mut self, t: SimTime, latency: SimDuration, score: f64, base: f64) {
        self.roll_to(t);
        self.current.completed += 1;
        self.totals.completed += 1;
        if latency > self.slo {
            self.current.violations += 1;
            self.totals.violations += 1;
        } else {
            self.current.in_slo += 1;
            self.totals.in_slo += 1;
            self.current.quality_sum += score;
            self.totals.quality_sum += score;
            let rel = if base > 0.0 { score / base } else { 0.0 };
            self.current.relative_quality_sum += rel;
            self.totals.relative_quality_sum += rel;
        }
    }

    /// Records a query lost to a failure (counted as an SLO violation).
    pub fn on_lost(&mut self, t: SimTime) {
        self.roll_to(t);
        self.current.violations += 1;
        self.totals.violations += 1;
    }

    /// Records a model load (variant switch with weight movement).
    pub fn on_model_load(&mut self, t: SimTime) {
        self.roll_to(t);
        self.current.model_loads += 1;
        self.totals.model_loads += 1;
    }

    /// Records a cache retrieval latency.
    pub fn on_retrieval(&mut self, t: SimTime, latency: SimDuration) {
        self.roll_to(t);
        self.current.retrievals += 1;
        self.current.retrieval_latency_sum += latency.as_secs();
        self.lookup_latencies.push(latency.as_secs());
    }

    /// Records a cache-lookup outcome against the worker's assigned AC
    /// level (no-neighbour lookups are recorded as misses by the caller).
    pub fn on_cache_lookup(&mut self, level: ApproxLevel, status: FetchStatus) {
        let counts = match self.cache_counts.iter_mut().find(|(l, _)| *l == level) {
            Some((_, c)) => c,
            None => {
                self.cache_counts.push((level, LevelCacheCounts::default()));
                &mut self.cache_counts.last_mut().expect("just pushed").1
            }
        };
        match status {
            FetchStatus::Hit => counts.hits += 1,
            FetchStatus::Miss => counts.misses += 1,
            FetchStatus::Failed => counts.failures += 1,
        }
    }

    /// Records one serving-time index insert with its replica fan-out:
    /// `writes` copies stored, of which `hops` crossed the network
    /// (cross-worker replicas and off-cluster indexes).
    pub fn on_cache_insert(&mut self, writes: u32, hops: u32) {
        self.inserts += 1;
        self.replica_writes += u64::from(writes);
        self.remote_write_hops += u64::from(hops);
    }

    /// Folds in insert counters accumulated elsewhere (the cache-plane
    /// stage counts its fire-and-forget writes locally and merges them
    /// here at teardown). Pure run-level totals, so the merge point does
    /// not affect any per-minute record.
    pub fn on_cache_insert_totals(&mut self, inserts: u64, replica_writes: u64, remote_hops: u64) {
        self.inserts += inserts;
        self.replica_writes += replica_writes;
        self.remote_write_hops += remote_hops;
    }

    /// Samples cluster utilization at the minute boundary.
    pub fn on_utilization_sample(&mut self, t: SimTime, utilization: f64) {
        self.roll_to(t);
        self.current.utilization = utilization;
    }

    /// Finalizes at time `end`, returning per-minute records, totals and
    /// the retrieval-plane statistics.
    pub fn finish(mut self, end: SimTime) -> (Vec<MinuteRecord>, RunTotals, RetrievalStats) {
        self.roll_to(end);
        self.minutes.push(self.current);
        let mut per_level = self.cache_counts;
        per_level.sort_by_key(|&(l, _)| l.ordinal());
        let mut lats = self.lookup_latencies;
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = lats.len();
        let retrieval = RetrievalStats {
            per_level,
            lookups: n as u64,
            mean_latency: if n == 0 {
                0.0
            } else {
                lats.iter().sum::<f64>() / n as f64
            },
            p99_latency: if n == 0 {
                0.0
            } else {
                lats[(((n as f64) * 0.99).ceil() as usize).clamp(1, n) - 1]
            },
            inserts: self.inserts,
            replica_writes: self.replica_writes,
            remote_write_hops: self.remote_write_hops,
        };
        (self.minutes, self.totals, retrieval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn base() -> SimDuration {
        SimDuration::from_secs(4.2)
    }

    #[test]
    fn slo_is_three_times_base_latency() {
        let c = MetricsCollector::new(base());
        assert!((c.slo().as_secs() - 12.6).abs() < 1e-9);
    }

    #[test]
    fn minute_rollup_and_totals() {
        let mut c = MetricsCollector::new(base());
        c.on_arrival(t(10.0));
        c.on_completion(t(14.0), SimDuration::from_secs(4.0), 20.0, 21.0);
        c.on_arrival(t(70.0)); // minute 1
        c.on_completion(t(90.0), SimDuration::from_secs(20.0), 19.0, 21.0); // violation
        let (minutes, totals, _) = c.finish(t(121.0));
        assert_eq!(minutes.len(), 3);
        assert_eq!(minutes[0].offered, 1);
        assert_eq!(minutes[0].completed, 1);
        assert_eq!(minutes[0].violations, 0);
        assert!((minutes[0].effective_accuracy() - 20.0).abs() < 1e-12);
        assert!((minutes[0].relative_quality() - 20.0 / 21.0).abs() < 1e-12);
        assert_eq!(minutes[1].violations, 1);
        assert_eq!(minutes[1].in_slo, 0);
        assert_eq!(minutes[1].effective_accuracy(), 0.0);
        assert_eq!(totals.offered, 2);
        assert_eq!(totals.completed, 2);
        assert_eq!(totals.violations, 1);
        assert_eq!(totals.slo_violation_ratio(), 0.5);
        assert!((totals.mean_throughput_qpm(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lost_queries_count_as_violations() {
        let mut c = MetricsCollector::new(base());
        c.on_arrival(t(1.0));
        c.on_lost(t(2.0));
        let (_, totals, retrieval) = c.finish(t(3.0));
        assert_eq!(totals.violations, 1);
        assert_eq!(totals.completed, 0);
        assert_eq!(totals.slo_violation_ratio(), 1.0);
        assert_eq!(retrieval, RetrievalStats::default());
    }

    #[test]
    fn retrieval_and_load_accounting() {
        let mut c = MetricsCollector::new(base());
        c.on_retrieval(t(5.0), SimDuration::from_millis(20.0));
        c.on_retrieval(t(6.0), SimDuration::from_millis(40.0));
        c.on_model_load(t(7.0));
        c.on_utilization_sample(t(8.0), 0.85);
        let (minutes, totals, retrieval) = c.finish(t(59.0));
        assert_eq!(minutes[0].retrievals, 2);
        assert!((minutes[0].mean_retrieval_latency() - 0.03).abs() < 1e-9);
        assert_eq!(minutes[0].model_loads, 1);
        assert_eq!(totals.model_loads, 1);
        assert_eq!(minutes[0].utilization, 0.85);
        assert_eq!(retrieval.lookups, 2);
        assert!((retrieval.mean_latency - 0.03).abs() < 1e-9);
        assert!((retrieval.p99_latency - 0.04).abs() < 1e-9);
    }

    #[test]
    fn cache_lookup_counts_sort_by_level_ordinal() {
        use argus_models::AcLevel;
        let mut c = MetricsCollector::new(base());
        let deep = ApproxLevel::Ac(AcLevel(25));
        let shallow = ApproxLevel::Ac(AcLevel(10));
        c.on_cache_lookup(deep, FetchStatus::Hit);
        c.on_cache_lookup(shallow, FetchStatus::Miss);
        c.on_cache_lookup(deep, FetchStatus::Hit);
        c.on_cache_lookup(deep, FetchStatus::Failed);
        let (_, _, retrieval) = c.finish(t(60.0));
        // First-seen was the deeper level; the output is ordinal-sorted.
        assert_eq!(
            retrieval.per_level,
            vec![
                (
                    shallow,
                    LevelCacheCounts {
                        hits: 0,
                        misses: 1,
                        failures: 0
                    }
                ),
                (
                    deep,
                    LevelCacheCounts {
                        hits: 2,
                        misses: 0,
                        failures: 1
                    }
                ),
            ]
        );
        assert_eq!(retrieval.hits(), 2);
        assert_eq!(retrieval.misses(), 1);
        assert_eq!(retrieval.failures(), 1);
        assert!((retrieval.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p99_latency_picks_the_tail() {
        let mut c = MetricsCollector::new(base());
        for i in 1..=100 {
            c.on_retrieval(t(i as f64 * 0.01), SimDuration::from_millis(i as f64));
        }
        let (_, _, retrieval) = c.finish(t(60.0));
        assert_eq!(retrieval.lookups, 100);
        assert!((retrieval.p99_latency - 0.099).abs() < 1e-9);
        assert!((retrieval.mean_latency - 0.0505).abs() < 1e-9);
    }

    #[test]
    fn empty_minutes_are_materialized() {
        let mut c = MetricsCollector::new(base());
        c.on_arrival(t(0.0));
        c.on_arrival(t(300.0)); // minute 5
        let (minutes, _, _) = c.finish(t(301.0));
        assert_eq!(minutes.len(), 6);
        assert!(minutes[1..5].iter().all(|m| m.offered == 0));
        assert_eq!(minutes[5].offered, 1);
    }

    #[test]
    fn zero_division_guards() {
        let rec = MinuteRecord::default();
        assert_eq!(rec.effective_accuracy(), 0.0);
        assert_eq!(rec.relative_quality(), 0.0);
        assert_eq!(rec.violation_ratio(), 0.0);
        assert_eq!(rec.mean_retrieval_latency(), 0.0);
        let totals = RunTotals::default();
        assert_eq!(totals.slo_violation_ratio(), 0.0);
        assert_eq!(totals.mean_throughput_qpm(0.0), 0.0);
    }
}
