//! Evaluation metrics (§5.1).
//!
//! Three headline metrics, recorded per simulated minute and aggregated:
//!
//! * **Throughput** — queries completed per minute;
//! * **Effective accuracy** — mean PickScore over queries completed within
//!   the latency SLO;
//! * **SLO violation ratio** — fraction of queries exceeding the SLO
//!   (3× the SD-XL latency, i.e. 12.6 s end-to-end), including queries
//!   lost to failures.
//!
//! Plus the §5.7 auxiliaries: relative quality, cluster utilization,
//! model-switch counts and cache-retrieval latency.

use argus_des::{SimDuration, SimTime};

/// The latency SLO multiplier over the largest model's inference time
/// (§5.1, following Proteus).
pub const SLO_MULTIPLIER: f64 = 3.0;

/// One minute of system telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MinuteRecord {
    /// Minute index from simulation start.
    pub minute: u64,
    /// Queries that arrived this minute (offered load).
    pub offered: u64,
    /// Queries completed this minute (throughput).
    pub completed: u64,
    /// Completions that violated the latency SLO, plus lost queries.
    pub violations: u64,
    /// Sum of PickScores over in-SLO completions.
    pub quality_sum: f64,
    /// Sum of (score / base score) over in-SLO completions.
    pub relative_quality_sum: f64,
    /// In-SLO completions (denominator for the two sums above).
    pub in_slo: u64,
    /// Mean cluster utilization sampled at the minute boundary.
    pub utilization: f64,
    /// Model loads (weight movements) started this minute.
    pub model_loads: u64,
    /// Mean cache-retrieval latency this minute (seconds; 0 if no
    /// retrievals).
    pub retrieval_latency_sum: f64,
    /// Number of cache retrievals this minute.
    pub retrievals: u64,
}

impl MinuteRecord {
    /// Mean PickScore of in-SLO completions ("effective accuracy").
    pub fn effective_accuracy(&self) -> f64 {
        if self.in_slo == 0 {
            0.0
        } else {
            self.quality_sum / self.in_slo as f64
        }
    }

    /// Mean relative quality (score / prompt's best score) of in-SLO
    /// completions, in `[0, ~1]`.
    pub fn relative_quality(&self) -> f64 {
        if self.in_slo == 0 {
            0.0
        } else {
            self.relative_quality_sum / self.in_slo as f64
        }
    }

    /// Violations over offered queries this minute.
    pub fn violation_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.violations as f64 / self.offered as f64
        }
    }

    /// Mean retrieval latency in seconds.
    pub fn mean_retrieval_latency(&self) -> f64 {
        if self.retrievals == 0 {
            0.0
        } else {
            self.retrieval_latency_sum / self.retrievals as f64
        }
    }
}

/// Whole-run aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunTotals {
    /// Total queries offered.
    pub offered: u64,
    /// Total completions.
    pub completed: u64,
    /// Total SLO violations (late completions + lost queries).
    pub violations: u64,
    /// Sum of PickScores over in-SLO completions.
    pub quality_sum: f64,
    /// Sum of relative qualities over in-SLO completions.
    pub relative_quality_sum: f64,
    /// In-SLO completions.
    pub in_slo: u64,
    /// Total model loads.
    pub model_loads: u64,
}

impl RunTotals {
    /// Mean PickScore over in-SLO completions.
    pub fn effective_accuracy(&self) -> f64 {
        if self.in_slo == 0 {
            0.0
        } else {
            self.quality_sum / self.in_slo as f64
        }
    }

    /// Mean relative quality over in-SLO completions.
    pub fn relative_quality(&self) -> f64 {
        if self.in_slo == 0 {
            0.0
        } else {
            self.relative_quality_sum / self.in_slo as f64
        }
    }

    /// Fraction of offered queries that violated the SLO.
    pub fn slo_violation_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.violations as f64 / self.offered as f64
        }
    }

    /// Mean throughput in QPM over `minutes`.
    pub fn mean_throughput_qpm(&self, minutes: f64) -> f64 {
        if minutes <= 0.0 {
            0.0
        } else {
            self.completed as f64 / minutes
        }
    }
}

/// Streaming collector turning per-event observations into per-minute
/// records plus run totals.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    slo: SimDuration,
    current: MinuteRecord,
    minutes: Vec<MinuteRecord>,
    totals: RunTotals,
}

impl MetricsCollector {
    /// Creates a collector with the SLO derived from the base model
    /// latency: `SLO_MULTIPLIER × base_latency`.
    pub fn new(base_latency: SimDuration) -> Self {
        MetricsCollector {
            slo: base_latency * SLO_MULTIPLIER,
            current: MinuteRecord::default(),
            minutes: Vec::new(),
            totals: RunTotals::default(),
        }
    }

    /// The SLO deadline.
    pub fn slo(&self) -> SimDuration {
        self.slo
    }

    fn minute_of(&self, t: SimTime) -> u64 {
        t.as_micros() / 60_000_000
    }

    /// Rolls the current minute forward until it covers `t`.
    fn roll_to(&mut self, t: SimTime) {
        let m = self.minute_of(t);
        while self.current.minute < m {
            let mut rec = self.current;
            rec.utilization = self.current.utilization;
            self.minutes.push(rec);
            self.current = MinuteRecord {
                minute: self.current.minute + 1,
                ..MinuteRecord::default()
            };
        }
    }

    /// Records a query arrival.
    pub fn on_arrival(&mut self, t: SimTime) {
        self.roll_to(t);
        self.current.offered += 1;
        self.totals.offered += 1;
    }

    /// Records a completion with its end-to-end latency, PickScore and the
    /// prompt's base (best-achievable) score.
    pub fn on_completion(&mut self, t: SimTime, latency: SimDuration, score: f64, base: f64) {
        self.roll_to(t);
        self.current.completed += 1;
        self.totals.completed += 1;
        if latency > self.slo {
            self.current.violations += 1;
            self.totals.violations += 1;
        } else {
            self.current.in_slo += 1;
            self.totals.in_slo += 1;
            self.current.quality_sum += score;
            self.totals.quality_sum += score;
            let rel = if base > 0.0 { score / base } else { 0.0 };
            self.current.relative_quality_sum += rel;
            self.totals.relative_quality_sum += rel;
        }
    }

    /// Records a query lost to a failure (counted as an SLO violation).
    pub fn on_lost(&mut self, t: SimTime) {
        self.roll_to(t);
        self.current.violations += 1;
        self.totals.violations += 1;
    }

    /// Records a model load (variant switch with weight movement).
    pub fn on_model_load(&mut self, t: SimTime) {
        self.roll_to(t);
        self.current.model_loads += 1;
        self.totals.model_loads += 1;
    }

    /// Records a cache retrieval latency.
    pub fn on_retrieval(&mut self, t: SimTime, latency: SimDuration) {
        self.roll_to(t);
        self.current.retrievals += 1;
        self.current.retrieval_latency_sum += latency.as_secs();
    }

    /// Samples cluster utilization at the minute boundary.
    pub fn on_utilization_sample(&mut self, t: SimTime, utilization: f64) {
        self.roll_to(t);
        self.current.utilization = utilization;
    }

    /// Finalizes at time `end`, returning per-minute records and totals.
    pub fn finish(mut self, end: SimTime) -> (Vec<MinuteRecord>, RunTotals) {
        self.roll_to(end);
        self.minutes.push(self.current);
        (self.minutes, self.totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn base() -> SimDuration {
        SimDuration::from_secs(4.2)
    }

    #[test]
    fn slo_is_three_times_base_latency() {
        let c = MetricsCollector::new(base());
        assert!((c.slo().as_secs() - 12.6).abs() < 1e-9);
    }

    #[test]
    fn minute_rollup_and_totals() {
        let mut c = MetricsCollector::new(base());
        c.on_arrival(t(10.0));
        c.on_completion(t(14.0), SimDuration::from_secs(4.0), 20.0, 21.0);
        c.on_arrival(t(70.0)); // minute 1
        c.on_completion(t(90.0), SimDuration::from_secs(20.0), 19.0, 21.0); // violation
        let (minutes, totals) = c.finish(t(121.0));
        assert_eq!(minutes.len(), 3);
        assert_eq!(minutes[0].offered, 1);
        assert_eq!(minutes[0].completed, 1);
        assert_eq!(minutes[0].violations, 0);
        assert!((minutes[0].effective_accuracy() - 20.0).abs() < 1e-12);
        assert!((minutes[0].relative_quality() - 20.0 / 21.0).abs() < 1e-12);
        assert_eq!(minutes[1].violations, 1);
        assert_eq!(minutes[1].in_slo, 0);
        assert_eq!(minutes[1].effective_accuracy(), 0.0);
        assert_eq!(totals.offered, 2);
        assert_eq!(totals.completed, 2);
        assert_eq!(totals.violations, 1);
        assert_eq!(totals.slo_violation_ratio(), 0.5);
        assert!((totals.mean_throughput_qpm(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lost_queries_count_as_violations() {
        let mut c = MetricsCollector::new(base());
        c.on_arrival(t(1.0));
        c.on_lost(t(2.0));
        let (_, totals) = c.finish(t(3.0));
        assert_eq!(totals.violations, 1);
        assert_eq!(totals.completed, 0);
        assert_eq!(totals.slo_violation_ratio(), 1.0);
    }

    #[test]
    fn retrieval_and_load_accounting() {
        let mut c = MetricsCollector::new(base());
        c.on_retrieval(t(5.0), SimDuration::from_millis(20.0));
        c.on_retrieval(t(6.0), SimDuration::from_millis(40.0));
        c.on_model_load(t(7.0));
        c.on_utilization_sample(t(8.0), 0.85);
        let (minutes, totals) = c.finish(t(59.0));
        assert_eq!(minutes[0].retrievals, 2);
        assert!((minutes[0].mean_retrieval_latency() - 0.03).abs() < 1e-9);
        assert_eq!(minutes[0].model_loads, 1);
        assert_eq!(totals.model_loads, 1);
        assert_eq!(minutes[0].utilization, 0.85);
    }

    #[test]
    fn empty_minutes_are_materialized() {
        let mut c = MetricsCollector::new(base());
        c.on_arrival(t(0.0));
        c.on_arrival(t(300.0)); // minute 5
        let (minutes, _) = c.finish(t(301.0));
        assert_eq!(minutes.len(), 6);
        assert!(minutes[1..5].iter().all(|m| m.offered == 0));
        assert_eq!(minutes[5].offered, 1);
    }

    #[test]
    fn zero_division_guards() {
        let rec = MinuteRecord::default();
        assert_eq!(rec.effective_accuracy(), 0.0);
        assert_eq!(rec.relative_quality(), 0.0);
        assert_eq!(rec.violation_ratio(), 0.0);
        assert_eq!(rec.mean_retrieval_latency(), 0.0);
        let totals = RunTotals::default();
        assert_eq!(totals.slo_violation_ratio(), 0.0);
        assert_eq!(totals.mean_throughput_qpm(0.0), 0.0);
    }
}
