//! The Prompt Scheduler's Worker-Selector (Eq. 3, §4.4).
//!
//! After the classifier and PASM have fixed the serving level `v′`, the
//! Worker-Selector routes the prompt to the worker minimizing expected
//! total processing time: `argmin_w queue_w × t_proc(v′_w)`. When no alive
//! worker serves `v′` (failures, mid-reallocation), the selector falls
//! back to the nearest populated level, preferring the slower (quality-
//! preserving) side.

use argus_cluster::{Cluster, WorkerId};
use argus_models::ApproxLevel;

/// Picks the worker for a prompt assigned to `ladder[target]`.
///
/// `proc_secs(level_idx)` estimates per-image processing time at a level
/// (compute + retrieval overhead). Returns the chosen worker and the
/// ladder index it is counted under, or `None` if no alive worker serves
/// any level (e.g. total failure).
///
/// # Panics
/// Panics if `target >= ladder.len()`.
pub fn select_worker(
    cluster: &Cluster,
    ladder: &[ApproxLevel],
    target: usize,
    proc_secs: &dyn Fn(usize) -> f64,
) -> Option<(WorkerId, usize)> {
    assert!(target < ladder.len(), "target level out of range");
    // Candidate levels in preference order: exact, then ±1, ±2 … with the
    // slower (lower-index) side first — shifting left never hurts quality.
    let n = ladder.len();
    let mut level_order = Vec::with_capacity(n);
    level_order.push(target);
    for d in 1..n {
        if target >= d {
            level_order.push(target - d);
        }
        if target + d < n {
            level_order.push(target + d);
        }
    }

    for lvl in level_order {
        let candidates = cluster.workers_at_level(ladder[lvl]);
        if candidates.is_empty() {
            continue;
        }
        let t = proc_secs(lvl).max(1e-9);
        // Eq. 3: minimize backlog × processing time; ties to lowest id.
        let best = candidates
            .into_iter()
            .min_by(|&a, &b| {
                let ca = cluster.worker(a).backlog() as f64 * t;
                let cb = cluster.worker(b).backlog() as f64 * t;
                ca.partial_cmp(&cb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .expect("non-empty candidates");
        return Some((best, lvl));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_des::SimTime;
    use argus_models::{AcLevel, GpuArch, Strategy};

    fn ladder() -> Vec<ApproxLevel> {
        ApproxLevel::ladder(Strategy::Ac)
    }

    fn cluster_with_levels(levels: &[(usize, usize)]) -> Cluster {
        // (worker_count at ladder idx) pairs.
        let total: usize = levels.iter().map(|&(_, c)| c).sum();
        let mut cluster = Cluster::new(total, GpuArch::A100);
        let ladder = ladder();
        let mut wid = 0;
        for &(lvl, count) in levels {
            for _ in 0..count {
                let w = cluster.worker_mut(WorkerId(wid));
                w.assign_level(ladder[lvl], SimTime::ZERO);
                w.finish_load(SimTime::from_secs(100.0));
                wid += 1;
            }
        }
        cluster
    }

    fn proc(_: usize) -> f64 {
        4.0
    }

    #[test]
    fn picks_least_loaded_worker_at_target_level() {
        let mut cluster = cluster_with_levels(&[(2, 3)]);
        cluster.worker_mut(WorkerId(0)).enqueue(1, SimTime::ZERO);
        cluster.worker_mut(WorkerId(0)).enqueue(2, SimTime::ZERO);
        cluster.worker_mut(WorkerId(1)).enqueue(3, SimTime::ZERO);
        let (w, lvl) = select_worker(&cluster, &ladder(), 2, &proc).unwrap();
        assert_eq!(w, WorkerId(2)); // empty queue
        assert_eq!(lvl, 2);
    }

    #[test]
    fn tie_breaks_to_lowest_id() {
        let cluster = cluster_with_levels(&[(1, 4)]);
        let (w, _) = select_worker(&cluster, &ladder(), 1, &proc).unwrap();
        assert_eq!(w, WorkerId(0));
    }

    #[test]
    fn falls_back_to_slower_level_first() {
        // Target level 3 unpopulated; levels 2 (slower) and 4 (faster)
        // both exist — prefer 2.
        let cluster = cluster_with_levels(&[(2, 1), (4, 1)]);
        let (w, lvl) = select_worker(&cluster, &ladder(), 3, &proc).unwrap();
        assert_eq!(lvl, 2);
        assert_eq!(w, WorkerId(0));
    }

    #[test]
    fn falls_back_to_faster_when_no_slower_exists() {
        let cluster = cluster_with_levels(&[(5, 2)]);
        let (_, lvl) = select_worker(&cluster, &ladder(), 1, &proc).unwrap();
        assert_eq!(lvl, 5);
    }

    #[test]
    fn skips_failed_workers() {
        let mut cluster = cluster_with_levels(&[(0, 2)]);
        cluster.worker_mut(WorkerId(0)).fail(SimTime::ZERO);
        let (w, _) = select_worker(&cluster, &ladder(), 0, &proc).unwrap();
        assert_eq!(w, WorkerId(1));
    }

    #[test]
    fn none_when_everything_failed() {
        let mut cluster = cluster_with_levels(&[(0, 2)]);
        cluster.worker_mut(WorkerId(0)).fail(SimTime::ZERO);
        cluster.worker_mut(WorkerId(1)).fail(SimTime::ZERO);
        assert!(select_worker(&cluster, &ladder(), 0, &proc).is_none());
    }

    #[test]
    fn counts_in_flight_jobs_in_backlog() {
        let mut cluster = cluster_with_levels(&[(0, 2)]);
        // Worker 0: one in-flight job; worker 1: idle.
        cluster.worker_mut(WorkerId(0)).enqueue(1, SimTime::ZERO);
        cluster
            .worker_mut(WorkerId(0))
            .try_start(SimTime::ZERO, argus_des::SimDuration::from_secs(4.0));
        let (w, _) = select_worker(&cluster, &ladder(), 0, &proc).unwrap();
        assert_eq!(w, WorkerId(1));
    }

    #[test]
    fn loading_workers_count_for_their_pending_level() {
        let mut cluster = Cluster::new(1, GpuArch::A100);
        let lvl = ApproxLevel::Ac(AcLevel(10));
        cluster
            .worker_mut(WorkerId(0))
            .assign_level(lvl, SimTime::ZERO);
        // Still loading, but routable (jobs queue behind the load).
        let (w, idx) = select_worker(&cluster, &ladder(), 2, &proc).unwrap();
        assert_eq!(w, WorkerId(0));
        assert_eq!(idx, 2);
    }

    #[test]
    #[should_panic(expected = "target level out of range")]
    fn target_bounds_checked() {
        let cluster = cluster_with_levels(&[(0, 1)]);
        let _ = select_worker(&cluster, &ladder(), 9, &proc);
    }
}
