//! The Prompt Scheduler's Worker-Selector (Eq. 3, §4.4).
//!
//! After the classifier and PASM have fixed the serving level `v′`, the
//! Worker-Selector routes the prompt to the worker minimizing expected
//! total processing time: `argmin_w queue_w × t_proc(v′_w)`. When no alive
//! worker serves `v′` (failures, mid-reallocation), the selector falls
//! back to the nearest populated level, preferring the slower (quality-
//! preserving) side.
//!
//! On heterogeneous fleets `t_proc` depends on the worker's GPU
//! architecture as well as the level, so the estimate is evaluated per
//! candidate — a V100 with an empty queue can still lose to a busier A100.

use argus_cluster::{Cluster, WorkerId};
use argus_models::{ApproxLevel, GpuArch};

/// Per-architecture view of the routing ladder for runs with per-pool
/// strategies (`RunConfig::with_pool_strategy`): ladder index `i` means a
/// *position*, and each architecture pool serves its own strategy's level
/// at that position. Every ladder is slowest-first with the same length
/// (both AC and SM ladders have six rungs), so the index — not the
/// concrete level — is the common currency the classifier, PASM, ω and
/// Eq. 3 route by, and an SM-pinned V100 pool can absorb traffic the
/// AC-planned A100 pool would have served at the same rung.
#[derive(Debug, Clone)]
pub struct PoolView {
    ladders: Vec<(GpuArch, Vec<ApproxLevel>)>,
}

impl PoolView {
    /// Builds a view from per-architecture ladders.
    ///
    /// # Panics
    /// Panics if `ladders` is empty or the ladders disagree on length.
    pub fn new(ladders: Vec<(GpuArch, Vec<ApproxLevel>)>) -> Self {
        assert!(!ladders.is_empty(), "pool view needs at least one pool");
        let n = ladders[0].1.len();
        assert!(
            ladders.iter().all(|(_, l)| l.len() == n),
            "pool ladders must agree on rung count"
        );
        PoolView { ladders }
    }

    /// Rungs per ladder.
    pub fn levels(&self) -> usize {
        self.ladders[0].1.len()
    }

    /// The level ladder index `idx` means on `gpu`'s pool.
    pub fn level_of(&self, gpu: GpuArch, idx: usize) -> Option<ApproxLevel> {
        self.ladders
            .iter()
            .find(|&&(g, _)| g == gpu)
            .and_then(|(_, l)| l.get(idx))
            .copied()
    }

    /// The ladder index `level` sits at on `gpu`'s pool.
    pub fn index_of(&self, gpu: GpuArch, level: ApproxLevel) -> Option<usize> {
        self.ladders
            .iter()
            .find(|&&(g, _)| g == gpu)
            .and_then(|(_, l)| l.iter().position(|&x| x == level))
    }
}

/// Picks the worker for a prompt assigned to `ladder[target]`.
///
/// `proc_secs(level_idx, gpu)` estimates per-image processing time at a
/// level on an architecture (compute + retrieval overhead). Returns the
/// chosen worker and the ladder index it is counted under, or `None` if no
/// alive worker serves any level (e.g. total failure).
///
/// # Panics
/// Panics if `target >= ladder.len()`.
pub fn select_worker(
    cluster: &Cluster,
    ladder: &[ApproxLevel],
    target: usize,
    proc_secs: &dyn Fn(usize, GpuArch) -> f64,
) -> Option<(WorkerId, usize)> {
    select_worker_in_view(cluster, ladder, target, proc_secs, None)
}

/// [`select_worker`] under an optional [`PoolView`]: with a view, a
/// worker is a candidate at ladder index `i` when it serves *its own
/// pool's* level at that index, so per-pool-strategy fleets route across
/// strategies by rung. Without a view this is exactly [`select_worker`].
///
/// # Panics
/// Panics if `target >= ladder.len()`.
pub fn select_worker_in_view(
    cluster: &Cluster,
    ladder: &[ApproxLevel],
    target: usize,
    proc_secs: &dyn Fn(usize, GpuArch) -> f64,
    view: Option<&PoolView>,
) -> Option<(WorkerId, usize)> {
    assert!(target < ladder.len(), "target level out of range");
    // Candidate levels in preference order: exact, then ±1, ±2 … with the
    // slower (lower-index) side first — shifting left never hurts quality.
    let n = ladder.len();
    let mut level_order = Vec::with_capacity(n);
    level_order.push(target);
    for d in 1..n {
        if target >= d {
            level_order.push(target - d);
        }
        if target + d < n {
            level_order.push(target + d);
        }
    }

    for lvl in level_order {
        // Eq. 3: minimize backlog × processing time (per-arch); ties to
        // lowest id. One in-order pass with a strict `<` keeps the
        // lowest-id minimum, and `proc_secs` — a pure function of
        // (level, architecture) — is evaluated once per architecture
        // present instead of twice per pairwise comparison.
        let mut proc_memo = [None::<f64>; GpuArch::ALL.len()];
        let mut best: Option<(f64, WorkerId)> = None;
        for worker in cluster.iter() {
            // Draining workers (preemption warning in progress) are alive
            // for their in-flight pass but closed to new work.
            if worker.is_failed() || worker.is_draining() {
                continue;
            }
            let serves = match view {
                None => {
                    worker.level() == Some(ladder[lvl])
                        || worker.pending_level() == Some(ladder[lvl])
                }
                Some(v) => v.level_of(worker.gpu(), lvl).is_some_and(|pool_level| {
                    worker.level() == Some(pool_level) || worker.pending_level() == Some(pool_level)
                }),
            };
            if !serves {
                continue;
            }
            let proc = *proc_memo[worker.gpu() as usize]
                .get_or_insert_with(|| proc_secs(lvl, worker.gpu()).max(1e-9));
            let cost = worker.backlog() as f64 * proc;
            if best.is_none_or(|(best_cost, _)| cost < best_cost) {
                best = Some((cost, worker.id()));
            }
        }
        if let Some((_, w)) = best {
            return Some((w, lvl));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_des::SimTime;
    use argus_models::{AcLevel, GpuArch, Strategy};

    fn ladder() -> Vec<ApproxLevel> {
        ApproxLevel::ladder(Strategy::Ac)
    }

    fn cluster_with_levels(levels: &[(usize, usize)]) -> Cluster {
        // (worker_count at ladder idx) pairs.
        let total: usize = levels.iter().map(|&(_, c)| c).sum();
        let mut cluster = Cluster::new(total, GpuArch::A100);
        let ladder = ladder();
        let mut wid = 0;
        for &(lvl, count) in levels {
            for _ in 0..count {
                let w = cluster.worker_mut(WorkerId(wid));
                w.assign_level(ladder[lvl], SimTime::ZERO);
                w.finish_load(SimTime::from_secs(100.0));
                wid += 1;
            }
        }
        cluster
    }

    fn proc(_: usize, _: GpuArch) -> f64 {
        4.0
    }

    #[test]
    fn picks_least_loaded_worker_at_target_level() {
        let mut cluster = cluster_with_levels(&[(2, 3)]);
        cluster.worker_mut(WorkerId(0)).enqueue(1, SimTime::ZERO);
        cluster.worker_mut(WorkerId(0)).enqueue(2, SimTime::ZERO);
        cluster.worker_mut(WorkerId(1)).enqueue(3, SimTime::ZERO);
        let (w, lvl) = select_worker(&cluster, &ladder(), 2, &proc).unwrap();
        assert_eq!(w, WorkerId(2)); // empty queue
        assert_eq!(lvl, 2);
    }

    #[test]
    fn tie_breaks_to_lowest_id() {
        let cluster = cluster_with_levels(&[(1, 4)]);
        let (w, _) = select_worker(&cluster, &ladder(), 1, &proc).unwrap();
        assert_eq!(w, WorkerId(0));
    }

    #[test]
    fn falls_back_to_slower_level_first() {
        // Target level 3 unpopulated; levels 2 (slower) and 4 (faster)
        // both exist — prefer 2.
        let cluster = cluster_with_levels(&[(2, 1), (4, 1)]);
        let (w, lvl) = select_worker(&cluster, &ladder(), 3, &proc).unwrap();
        assert_eq!(lvl, 2);
        assert_eq!(w, WorkerId(0));
    }

    #[test]
    fn falls_back_to_faster_when_no_slower_exists() {
        let cluster = cluster_with_levels(&[(5, 2)]);
        let (_, lvl) = select_worker(&cluster, &ladder(), 1, &proc).unwrap();
        assert_eq!(lvl, 5);
    }

    #[test]
    fn skips_failed_workers() {
        let mut cluster = cluster_with_levels(&[(0, 2)]);
        cluster.worker_mut(WorkerId(0)).fail(SimTime::ZERO);
        let (w, _) = select_worker(&cluster, &ladder(), 0, &proc).unwrap();
        assert_eq!(w, WorkerId(1));
    }

    #[test]
    fn none_when_everything_failed() {
        let mut cluster = cluster_with_levels(&[(0, 2)]);
        cluster.worker_mut(WorkerId(0)).fail(SimTime::ZERO);
        cluster.worker_mut(WorkerId(1)).fail(SimTime::ZERO);
        assert!(select_worker(&cluster, &ladder(), 0, &proc).is_none());
    }

    #[test]
    fn counts_in_flight_jobs_in_backlog() {
        let mut cluster = cluster_with_levels(&[(0, 2)]);
        // Worker 0: one in-flight job; worker 1: idle.
        cluster.worker_mut(WorkerId(0)).enqueue(1, SimTime::ZERO);
        cluster
            .worker_mut(WorkerId(0))
            .try_start(SimTime::ZERO, argus_des::SimDuration::from_secs(4.0));
        let (w, _) = select_worker(&cluster, &ladder(), 0, &proc).unwrap();
        assert_eq!(w, WorkerId(1));
    }

    #[test]
    fn loading_workers_count_for_their_pending_level() {
        let mut cluster = Cluster::new(1, GpuArch::A100);
        let lvl = ApproxLevel::Ac(AcLevel(10));
        cluster
            .worker_mut(WorkerId(0))
            .assign_level(lvl, SimTime::ZERO);
        // Still loading, but routable (jobs queue behind the load).
        let (w, idx) = select_worker(&cluster, &ladder(), 2, &proc).unwrap();
        assert_eq!(w, WorkerId(0));
        assert_eq!(idx, 2);
    }

    #[test]
    #[should_panic(expected = "target level out of range")]
    fn target_bounds_checked() {
        let cluster = cluster_with_levels(&[(0, 1)]);
        let _ = select_worker(&cluster, &ladder(), 9, &proc);
    }

    #[test]
    fn heterogeneous_cost_beats_raw_backlog() {
        // Worker 0 (A100, fast) has one queued job; worker 1 (V100, slow)
        // is idle. With the per-arch Eq. 3 estimate, the busier A100 still
        // wins when its backlog × t_proc is cheaper.
        let mut cluster = Cluster::heterogeneous(&[(GpuArch::A100, 1), (GpuArch::V100, 1)]);
        let lvl = ladder()[0];
        for id in 0..2 {
            let w = cluster.worker_mut(WorkerId(id));
            w.assign_level(lvl, SimTime::ZERO);
            w.finish_load(SimTime::from_secs(100.0));
        }
        cluster.worker_mut(WorkerId(0)).enqueue(1, SimTime::ZERO);
        let arch_proc = |_: usize, gpu: GpuArch| match gpu {
            GpuArch::A100 => 4.0,
            _ => 9.0,
        };
        // Cost: A100 = 1×4 = 4 < V100 = 0×9 = 0 — idle wins here…
        let (w, _) = select_worker(&cluster, &ladder(), 0, &arch_proc).unwrap();
        assert_eq!(w, WorkerId(1));
        // …but once the V100 queue grows, the A100 wins on cost even with
        // equal backlog.
        cluster.worker_mut(WorkerId(1)).enqueue(2, SimTime::ZERO);
        let (w, _) = select_worker(&cluster, &ladder(), 0, &arch_proc).unwrap();
        assert_eq!(w, WorkerId(0));
    }
}
