//! Cross-validation of the specialized Eq. 1 search (`solve_exact`)
//! against the general MILP formulation (`solve_milp`) on randomized
//! small instances, using a seeded RNG so every run checks the same
//! instance family.

use argus_core::{AllocationProblem, LevelProfile};
use argus_models::{ApproxLevel, GpuArch, Strategy};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn objective(p: &AllocationProblem, omega_qpm: &[f64]) -> f64 {
    omega_qpm
        .iter()
        .zip(&p.levels)
        .map(|(w, l)| w * l.quality)
        .sum()
}

/// Random instances over synthetic level profiles: the exact search and
/// the MILP must agree on the optimal objective and serve the same load.
#[test]
fn randomized_profiles_agree_with_milp() {
    let mut rng = StdRng::seed_from_u64(0xEC1);
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    for case in 0..120 {
        let n = rng.random_range(2..=4usize);
        let workers = rng.random_range(1..=5usize);
        let levels: Vec<LevelProfile> = (0..n)
            .map(|i| LevelProfile {
                level: ladder[i],
                quality: 15.0 + 7.0 * rng.random::<f64>(),
                peak_qpm: 8.0 + 32.0 * rng.random::<f64>(),
            })
            .collect();
        let demand_qpm = 250.0 * rng.random::<f64>();
        let p = AllocationProblem {
            levels,
            workers,
            demand_qpm,
        };
        let exact = p.solve_exact();
        let milp = p.solve_milp().expect("milp solves");
        let oe = objective(&p, &exact.omega_qpm);
        let om = objective(&p, &milp.omega_qpm);
        assert!(
            (oe - om).abs() < 1e-3 * oe.abs().max(1.0),
            "case {case}: exact {oe} vs milp {om} ({p:?})"
        );
        assert!(
            (exact.served_qpm - milp.served_qpm).abs() < 1e-4,
            "case {case}: served {} vs {}",
            exact.served_qpm,
            milp.served_qpm
        );
        assert_eq!(exact.saturated, milp.saturated, "case {case}");
    }
}

/// Random instances over the real calibrated ladders (both strategies,
/// varying retrieval overhead and SLO derating).
#[test]
fn randomized_calibrated_ladders_agree_with_milp() {
    let mut rng = StdRng::seed_from_u64(0xEC2);
    for case in 0..60 {
        let strategy = if rng.random::<bool>() {
            Strategy::Ac
        } else {
            Strategy::Sm
        };
        let overhead = if strategy == Strategy::Ac {
            0.3 * rng.random::<f64>()
        } else {
            0.0
        };
        let workers = rng.random_range(1..=6usize);
        let demand = 40.0 * workers as f64 * rng.random::<f64>();
        let mut p = AllocationProblem::from_ladder(
            &ApproxLevel::ladder(strategy),
            GpuArch::A100,
            overhead,
            workers,
            demand,
        );
        if rng.random::<bool>() {
            p = p.with_slo_derating(12.6);
        }
        let exact = p.solve_exact();
        let milp = p.solve_milp().expect("milp solves");
        let oe = objective(&p, &exact.omega_qpm);
        let om = objective(&p, &milp.omega_qpm);
        assert!(
            (oe - om).abs() < 1e-3 * oe.abs().max(1.0),
            "case {case} ({strategy:?}): exact {oe} vs milp {om}"
        );
        // Feasibility: neither allocation invents workers, and each
        // level's assigned load fits the workers placed there.
        for (label, a) in [("exact", &exact), ("milp", &milp)] {
            assert!(
                a.workers_per_level.iter().sum::<usize>() <= workers,
                "case {case} ({label}): too many workers"
            );
            for (v, w) in a.omega_qpm.iter().enumerate() {
                let cap = a.workers_per_level[v] as f64 * p.levels[v].peak_qpm;
                assert!(
                    *w <= cap + 1e-6,
                    "case {case} ({label}): level {v} overloaded ({w} > {cap})"
                );
            }
        }
    }
}
