//! Cross-validation of the specialized Eq. 1 searches (`solve_exact`,
//! `solve_fast`) against each other and against the general MILP
//! formulation (`solve_milp`) on randomized instances, using a seeded RNG
//! so every run checks the same instance family.
//!
//! Coverage by cluster size:
//! * small (≤ 6 workers): exact vs MILP on objective;
//! * testbed-to-mid (8, 16): exact vs fast, **bit for bit**;
//! * fleet scale (64, 128): exact vs fast bit-for-bit on 3-level
//!   instances (where enumeration stays tractable) and fast-solver
//!   invariants plus bit-determinism on the full 6-level ladders.

use argus_core::{AllocationProblem, LevelProfile};
use argus_models::{ApproxLevel, GpuArch, Strategy};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_profiles(rng: &mut StdRng, n: usize) -> Vec<LevelProfile> {
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    (0..n)
        .map(|i| LevelProfile {
            level: ladder[i],
            quality: 15.0 + 7.0 * rng.random::<f64>(),
            peak_qpm: 8.0 + 32.0 * rng.random::<f64>(),
        })
        .collect()
}

fn objective(p: &AllocationProblem, omega_qpm: &[f64]) -> f64 {
    omega_qpm
        .iter()
        .zip(&p.levels)
        .map(|(w, l)| w * l.quality)
        .sum()
}

/// Random instances over synthetic level profiles: the exact search and
/// the MILP must agree on the optimal objective and serve the same load.
#[test]
fn randomized_profiles_agree_with_milp() {
    let mut rng = StdRng::seed_from_u64(0xEC1);
    for case in 0..120 {
        let n = rng.random_range(2..=4usize);
        let workers = rng.random_range(1..=5usize);
        let levels = random_profiles(&mut rng, n);
        let demand_qpm = 250.0 * rng.random::<f64>();
        let p = AllocationProblem {
            levels,
            workers,
            demand_qpm,
        };
        let exact = p.solve_exact();
        let milp = p.solve_milp().expect("milp solves");
        let oe = objective(&p, &exact.omega_qpm);
        let om = objective(&p, &milp.omega_qpm);
        assert!(
            (oe - om).abs() < 1e-3 * oe.abs().max(1.0),
            "case {case}: exact {oe} vs milp {om} ({p:?})"
        );
        assert!(
            (exact.served_qpm - milp.served_qpm).abs() < 1e-4,
            "case {case}: served {} vs {}",
            exact.served_qpm,
            milp.served_qpm
        );
        assert_eq!(exact.saturated, milp.saturated, "case {case}");
    }
}

/// Random instances over the real calibrated ladders (both strategies,
/// varying retrieval overhead and SLO derating).
#[test]
fn randomized_calibrated_ladders_agree_with_milp() {
    let mut rng = StdRng::seed_from_u64(0xEC2);
    for case in 0..60 {
        let strategy = if rng.random::<bool>() {
            Strategy::Ac
        } else {
            Strategy::Sm
        };
        let overhead = if strategy == Strategy::Ac {
            0.3 * rng.random::<f64>()
        } else {
            0.0
        };
        let workers = rng.random_range(1..=6usize);
        let demand = 40.0 * workers as f64 * rng.random::<f64>();
        let mut p = AllocationProblem::from_ladder(
            &ApproxLevel::ladder(strategy),
            GpuArch::A100,
            overhead,
            workers,
            demand,
        );
        if rng.random::<bool>() {
            p = p.with_slo_derating(12.6);
        }
        let exact = p.solve_exact();
        let milp = p.solve_milp().expect("milp solves");
        let oe = objective(&p, &exact.omega_qpm);
        let om = objective(&p, &milp.omega_qpm);
        assert!(
            (oe - om).abs() < 1e-3 * oe.abs().max(1.0),
            "case {case} ({strategy:?}): exact {oe} vs milp {om}"
        );
        // Feasibility: neither allocation invents workers, and each
        // level's assigned load fits the workers placed there.
        for (label, a) in [("exact", &exact), ("milp", &milp)] {
            assert!(
                a.workers_per_level.iter().sum::<usize>() <= workers,
                "case {case} ({label}): too many workers"
            );
            for (v, w) in a.omega_qpm.iter().enumerate() {
                let cap = a.workers_per_level[v] as f64 * p.levels[v].peak_qpm;
                assert!(
                    *w <= cap + 1e-6,
                    "case {case} ({label}): level {v} overloaded ({w} > {cap})"
                );
            }
        }
    }
}

/// At the paper's testbed size and twice it (W ∈ {8, 16}), the
/// branch-and-bound must return the enumeration's allocation **bit for
/// bit** — same counts, same ω, same served load, same saturation flag —
/// on randomized 2–6-level instances.
#[test]
fn fast_solver_bit_identical_at_8_and_16_workers() {
    let mut rng = StdRng::seed_from_u64(0xEC3);
    for &workers in &[8usize, 16] {
        for case in 0..60 {
            let n = rng.random_range(2..=6usize);
            let levels = random_profiles(&mut rng, n);
            let max_peak = levels.iter().map(|l| l.peak_qpm).fold(0.0f64, f64::max);
            let demand_qpm = 1.2 * workers as f64 * max_peak * rng.random::<f64>();
            let p = AllocationProblem {
                levels,
                workers,
                demand_qpm,
            };
            assert_eq!(
                p.solve_exact(),
                p.solve_fast(),
                "W={workers} case {case}: {p:?}"
            );
        }
    }
}

/// At fleet scale (W ∈ {64, 128}) the enumeration stays tractable on
/// 3-level instances; the branch-and-bound must still match it bit for
/// bit there.
#[test]
fn fast_solver_bit_identical_at_64_and_128_workers() {
    let mut rng = StdRng::seed_from_u64(0xEC4);
    for &workers in &[64usize, 128] {
        for case in 0..25 {
            let levels = random_profiles(&mut rng, 3);
            let max_peak = levels.iter().map(|l| l.peak_qpm).fold(0.0f64, f64::max);
            let demand_qpm = 1.1 * workers as f64 * max_peak * rng.random::<f64>();
            let p = AllocationProblem {
                levels,
                workers,
                demand_qpm,
            };
            assert_eq!(
                p.solve_exact(),
                p.solve_fast(),
                "W={workers} case {case}: {p:?}"
            );
        }
    }
}

/// On the full calibrated 6-level ladders at 64 and 128 workers (beyond
/// the enumeration), the fast solver must serve `min(demand, capacity)`,
/// respect per-level capacity, use every worker, and be bit-deterministic
/// across invocations.
#[test]
fn fast_solver_invariants_on_large_calibrated_fleets() {
    let mut rng = StdRng::seed_from_u64(0xEC5);
    for &workers in &[64usize, 128] {
        for case in 0..12 {
            let strategy = if rng.random::<bool>() {
                Strategy::Ac
            } else {
                Strategy::Sm
            };
            let overhead = if strategy == Strategy::Ac {
                0.3 * rng.random::<f64>()
            } else {
                0.0
            };
            let mut p = AllocationProblem::from_ladder(
                &ApproxLevel::ladder(strategy),
                GpuArch::A100,
                overhead,
                workers,
                0.0,
            );
            if rng.random::<bool>() {
                p = p.with_slo_derating(12.6);
            }
            p.demand_qpm = 1.1 * p.max_capacity_qpm() * rng.random::<f64>();
            let a = p.solve_fast();
            let expect = p.demand_qpm.min(p.max_capacity_qpm());
            assert!(
                (a.served_qpm - expect).abs() < 1e-6,
                "W={workers} case {case}: served {} vs {expect}",
                a.served_qpm
            );
            assert_eq!(
                a.workers_per_level.iter().sum::<usize>(),
                workers,
                "W={workers} case {case}: workers unaccounted"
            );
            for (v, w) in a.omega_qpm.iter().enumerate() {
                let cap = a.workers_per_level[v] as f64 * p.levels[v].peak_qpm;
                assert!(
                    *w <= cap + 1e-6,
                    "W={workers} case {case}: level {v} overloaded"
                );
            }
            assert_eq!(
                a,
                p.solve_fast(),
                "W={workers} case {case}: not deterministic"
            );
        }
    }
}
