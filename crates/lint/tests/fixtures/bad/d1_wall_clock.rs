// Fixture: D1 wall-clock violations. Not compiled — lexed by the lint
// integration tests only.

fn measure() -> u64 {
    let start = std::time::Instant::now(); // line 5: Instant::now
    let _epoch = SystemTime::now(); // line 6: SystemTime
    start.elapsed().as_nanos() as u64
}
