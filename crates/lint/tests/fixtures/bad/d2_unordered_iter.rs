// Fixture: D2 unordered-iteration violations.

use std::collections::HashMap;

struct Accounting {
    completions: HashMap<u32, u64>,
}

fn summarize(acc: &Accounting) -> u64 {
    let mut total = 0;
    for (_, n) in &acc.completions {
        // for-loop over a HashMap field (line 11)
        total += n;
    }
    total + acc.completions.values().sum::<u64>() // .values() (line 15)
}
