// Fixture: D5 entropy-sourced RNG violations.

fn roll() -> u32 {
    let mut rng = rand::thread_rng(); // line 4: thread_rng
    let _other = StdRng::from_entropy(); // line 5: from_entropy
    rng.gen()
}
