// Fixture: D3 channel-boundedness violations.

use std::sync::mpsc;

fn wire() {
    let (_tx, _rx) = mpsc::channel::<u32>(); // line 6: unbounded
    let (_tx2, _rx2) = mpsc::sync_channel::<u32>(4096); // line 7: literal cap
}
