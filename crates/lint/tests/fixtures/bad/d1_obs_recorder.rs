// Fixture: D1 wall-clock violations in telemetry-recorder-shaped code.
// Not compiled — lexed by the lint integration tests only. The §12
// telemetry plane must stamp events with sim-time; a recorder that
// reaches for the host clock breaks bit-determinism across runs.

struct Recorder {
    events: Vec<(u128, u32)>,
}

impl Recorder {
    fn span(&mut self, job: u32) {
        let stamp = std::time::Instant::now(); // line 12: Instant::now
        let epoch = SystemTime::now(); // line 13: SystemTime
        let _ = epoch;
        self.events.push((stamp.elapsed().as_nanos(), job));
    }
}
