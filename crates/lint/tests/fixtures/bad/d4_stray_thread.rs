// Fixture: D4 stray-thread violations (this path is outside the actor
// control plane allowlist).

fn parallelize() {
    let h = std::thread::spawn(|| 1 + 1); // line 5: spawn
    std::thread::scope(|_s| {}); // line 6: scope
    let _ = h.join();
}
