// Fixture: an escape hatch without a reason does not suppress, and is
// itself a finding.

fn measure() -> std::time::Instant {
    // lint: allow(wall-clock)
    std::time::Instant::now()
}
