// Fixture: a properly annotated site is demoted to a counted note.

fn bench_overhead() -> u64 {
    // lint: allow(wall-clock) — measuring real solver overhead is the
    // point of this harness; nothing simulated depends on the reading.
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
