// Fixture: stage `alpha` owns AlphaMsg and blocks on beta — half of a
// request cycle.

pub enum AlphaMsg {
    Query(OneshotSender<u64>),
}

pub struct AlphaStage {
    beta: StageHandle<BetaMsg>,
}

impl AlphaStage {
    fn handle(&mut self, _msg: AlphaMsg) {
        let _ = self.beta.request(());
    }
}
