// Fixture: stage `beta` owns BetaMsg and blocks back on alpha — the
// other half of the request cycle.

pub enum BetaMsg {
    Query(OneshotSender<u64>),
}

pub struct BetaStage {
    alpha: StageHandle<AlphaMsg>,
}

impl BetaStage {
    fn handle(&mut self, _msg: BetaMsg) {
        let _ = self.alpha.request(());
    }
}
