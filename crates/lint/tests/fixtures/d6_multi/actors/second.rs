pub struct SecondStage {
    hub: StageHandle<HubMsg>,
}

impl SecondStage {
    fn tick(&mut self) {
        self.hub.send(HubMsg::Record(2));
    }
}
