pub struct FirstStage {
    hub: StageHandle<HubMsg>,
}

impl FirstStage {
    fn tick(&mut self) {
        self.hub.send(HubMsg::Record(1));
    }
}
