// Fixture: mailbox HubMsg, fed by two different stages below —
// violates single-producer FIFO causality.

pub enum HubMsg {
    Record(u64),
}
