// Fixture: every way a oneshot reply channel can violate the
// consumed-exactly-once contract.

pub enum RelayMsg {
    Get { key: u64, reply: OneshotSender<u64> },
    Sum { reply: OneshotSender<u64> },
    Put { key: u64 },
}

fn handle(total: &mut u64, msg: RelayMsg) {
    match msg {
        RelayMsg::Get { key, reply } => {
            // Bound but never sent: the requester panics.
            *total += key;
        }
        RelayMsg::Sum { reply } => {
            reply.send(*total);
            reply.send(*total + 1); // second send on the same path
        }
        RelayMsg::Put { key } => {
            *total = key;
        }
    }
}

fn forget() {
    // Sender leaks: `tx` never appears again.
    let (tx, rx) = oneshot();
    let _ = rx;
}
