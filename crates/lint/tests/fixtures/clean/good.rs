// Fixture: contract-conforming code — the lint must report nothing.

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc;

const MAILBOX_CAP: usize = 4096;

struct State {
    ordered: BTreeMap<u32, u64>,
    index: HashMap<u64, usize>,
}

fn run(state: &mut State, seed: u64) -> u64 {
    // Bounded channel with a named cap.
    let (_tx, _rx) = mpsc::sync_channel::<u32>(MAILBOX_CAP);
    // Seeded RNG, not entropy.
    let mut rng = StdRng::seed_from_u64(seed);
    // Iterating a BTreeMap is deterministic.
    let mut total = 0;
    for (_, v) in &state.ordered {
        total += v;
    }
    // Point lookups on a HashMap are fine; only iteration leaks order.
    if let Some(&slot) = state.index.get(&total) {
        total += slot as u64;
    }
    state.index.insert(total, 1);
    total + rng.gen_range(0..2)
}

fn wait_until(deadline: Instant) {
    // Mentioning the Instant type (without ::now) is fine.
    let _ = deadline;
}
