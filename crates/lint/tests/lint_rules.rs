//! Integration tests: each determinism rule D1–D7 must fire on its bad
//! fixture at the expected file:line, stay silent on the clean fixture,
//! and honor (and count) the escape-hatch annotation.
//!
//! The fixtures under `tests/fixtures/` are plain text to the lint —
//! they are excluded from the workspace scan and never compiled.

use argus_lint::report::Report;
use argus_lint::Config;
use std::path::PathBuf;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// A config that scans one fixture subtree with no allowlists.
fn cfg(scan: &str, actors_dir: &str) -> Config {
    Config {
        root: fixtures(),
        scan_dirs: vec![scan.to_string()],
        exclude: vec![],
        wall_clock_allow: vec![],
        thread_allow: vec![],
        actors_dir: actors_dir.to_string(),
    }
}

fn run(scan: &str, actors_dir: &str) -> Report {
    argus_lint::run(&cfg(scan, actors_dir)).expect("fixture scan")
}

/// (rule, file suffix, line) triples of unsuppressed deny findings.
fn denies(rep: &Report) -> Vec<(String, String, u32)> {
    rep.deny()
        .map(|f| (f.rule_id.clone(), f.file.clone(), f.line))
        .collect()
}

#[test]
fn d1_wall_clock_fixture() {
    let rep = run("bad/d1_wall_clock.rs", "-");
    let d = denies(&rep);
    assert_eq!(d.len(), 2, "{d:?}");
    assert_eq!(d[0], ("D1".into(), "bad/d1_wall_clock.rs".into(), 5));
    assert_eq!(d[1], ("D1".into(), "bad/d1_wall_clock.rs".into(), 6));
}

#[test]
fn d1_obs_recorder_fixture() {
    // A telemetry recorder that stamps events with the host clock is
    // exactly the regression D1 exists to catch in the obs crate.
    let rep = run("bad/d1_obs_recorder.rs", "-");
    let d = denies(&rep);
    assert_eq!(d.len(), 2, "{d:?}");
    assert_eq!(d[0], ("D1".into(), "bad/d1_obs_recorder.rs".into(), 12));
    assert_eq!(d[1], ("D1".into(), "bad/d1_obs_recorder.rs".into(), 13));
}

#[test]
fn obs_crate_is_wall_clock_free() {
    // The §12 telemetry plane runs on sim-time only: scan the real obs
    // crate with NO wall-clock allowlist and require zero findings.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let cfg = Config {
        root,
        scan_dirs: vec!["crates/obs".into()],
        exclude: vec![],
        wall_clock_allow: vec![],
        thread_allow: vec![],
        actors_dir: "-".into(),
    };
    let rep = argus_lint::run(&cfg).expect("obs scan");
    assert!(rep.files_scanned >= 4, "obs crate shrank unexpectedly");
    assert_eq!(rep.deny_count(), 0, "{:?}", denies(&rep));
    assert_eq!(rep.allowed().count(), 0, "obs must not need escape hatches");
}

#[test]
fn cascade_plane_is_deterministic_under_all_rules() {
    // The §13 cascade plane sits on the serving path: scan it with NO
    // allowlists — no wall clocks, no unordered iteration, no stray
    // threads, no unseeded RNG, and no escape hatches either. The
    // `Discriminator` contract (pure function of seed and inputs)
    // depends on D1/D5 actually holding here.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let cfg = Config {
        root,
        scan_dirs: vec!["crates/core/src/cascade".into()],
        exclude: vec![],
        wall_clock_allow: vec![],
        thread_allow: vec![],
        actors_dir: "-".into(),
    };
    let rep = argus_lint::run(&cfg).expect("cascade scan");
    assert!(rep.files_scanned >= 1, "cascade module missing");
    assert_eq!(rep.deny_count(), 0, "{:?}", denies(&rep));
    assert_eq!(
        rep.allowed().count(),
        0,
        "cascade must not need escape hatches"
    );
}

#[test]
fn d2_unordered_iter_fixture() {
    let rep = run("bad/d2_unordered_iter.rs", "-");
    let d = denies(&rep);
    assert_eq!(d.len(), 2, "{d:?}");
    assert_eq!(d[0], ("D2".into(), "bad/d2_unordered_iter.rs".into(), 11));
    assert_eq!(d[1], ("D2".into(), "bad/d2_unordered_iter.rs".into(), 15));
}

#[test]
fn d3_unbounded_channel_fixture() {
    let rep = run("bad/d3_unbounded_channel.rs", "-");
    let d = denies(&rep);
    assert_eq!(d.len(), 2, "{d:?}");
    assert_eq!(d[0], ("D3".into(), "bad/d3_unbounded_channel.rs".into(), 6));
    assert_eq!(d[1], ("D3".into(), "bad/d3_unbounded_channel.rs".into(), 7));
}

#[test]
fn d4_stray_thread_fixture() {
    let rep = run("bad/d4_stray_thread.rs", "-");
    let d = denies(&rep);
    assert_eq!(d.len(), 2, "{d:?}");
    assert_eq!(d[0], ("D4".into(), "bad/d4_stray_thread.rs".into(), 5));
    assert_eq!(d[1], ("D4".into(), "bad/d4_stray_thread.rs".into(), 6));
}

#[test]
fn d5_unseeded_rng_fixture() {
    let rep = run("bad/d5_unseeded_rng.rs", "-");
    let d = denies(&rep);
    assert_eq!(d.len(), 2, "{d:?}");
    assert_eq!(d[0], ("D5".into(), "bad/d5_unseeded_rng.rs".into(), 4));
    assert_eq!(d[1], ("D5".into(), "bad/d5_unseeded_rng.rs".into(), 5));
}

#[test]
fn d6_request_cycle_fixture() {
    let rep = run("d6_bad", "d6_bad/actors");
    let d = denies(&rep);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].0, "D6");
    let msg = &rep.deny().next().unwrap().message;
    assert!(msg.contains("request cycle"), "{msg}");
    assert!(msg.contains("alpha") && msg.contains("beta"), "{msg}");
}

#[test]
fn d6_multi_producer_fixture() {
    let rep = run("d6_multi", "d6_multi/actors");
    let d = denies(&rep);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].0, "D6");
    let msg = &rep.deny().next().unwrap().message;
    assert!(msg.contains("multiple producers"), "{msg}");
    assert!(msg.contains("HubMsg"), "{msg}");
}

#[test]
fn d7_reply_arity_fixture() {
    let rep = run("d7_bad", "d7_bad/actors");
    let d = denies(&rep);
    assert_eq!(d.len(), 3, "{d:?}");
    assert!(d
        .iter()
        .all(|(r, f, _)| r == "D7" && f.ends_with("relay.rs")));
    let msgs: Vec<&str> = rep.deny().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("never sent")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("more than once")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("never consumed")),
        "{msgs:?}"
    );
    assert_eq!(d[0].2, 12); // Get arm binds `reply`, never sends
    assert_eq!(d[1].2, 17); // Sum arm sends twice on one path
    assert_eq!(d[2].2, 28); // leaked oneshot sender
}

#[test]
fn clean_fixture_has_zero_findings() {
    let rep = run("clean", "-");
    assert_eq!(rep.deny_count(), 0, "{:?}", denies(&rep));
    assert_eq!(rep.allowed().count(), 0);
    assert_eq!(rep.files_scanned, 1);
}

#[test]
fn escape_hatch_suppresses_and_is_counted() {
    let rep = run("allowed", "-");
    assert_eq!(rep.deny_count(), 0, "{:?}", denies(&rep));
    let allowed: Vec<_> = rep.allowed().collect();
    assert_eq!(allowed.len(), 1);
    assert_eq!(allowed[0].rule_id, "D1");
    assert_eq!(allowed[0].file, "allowed/annotated.rs");
}

#[test]
fn missing_reason_keeps_deny_and_flags_annotation() {
    let rep = run("bad/la_missing_reason.rs", "-");
    let d = denies(&rep);
    // The D1 deny survives AND the annotation itself is flagged.
    assert_eq!(d.len(), 2, "{d:?}");
    assert!(d.iter().any(|(r, _, l)| r == "D1" && *l == 6), "{d:?}");
    assert!(d.iter().any(|(r, _, l)| r == "LA" && *l == 5), "{d:?}");
    assert_eq!(rep.allowed().count(), 0);
}

#[test]
fn workspace_scan_is_clean() {
    // The real acceptance gate: the workspace itself must lint clean.
    // CARGO_MANIFEST_DIR is crates/lint; the repo root is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let rep = argus_lint::run(&Config::for_repo(root)).expect("workspace scan");
    let d = denies(&rep);
    assert_eq!(rep.deny_count(), 0, "{d:?}");
    // The annotated escape hatches are counted, not silently dropped.
    assert!(rep.allowed().count() >= 4, "{}", rep.allowed().count());
}
