//! Finding type, the human-readable table, and the `LINT_REPORT.json`
//! emitter (hand-rolled — the lint crate is dependency-free).

use std::fmt::Write as _;

/// Severity of a finding. Everything the contract forbids is `Deny`;
/// `Note` is used for counted-but-allowed escape hatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Deny,
    Note,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Note => "note",
        }
    }
}

/// One lint finding, pinned to a file and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// `D1`…`D6` (or `LA` for annotation-grammar problems).
    pub rule_id: String,
    /// The escape-hatch slug (`wall-clock`, …).
    pub slug: String,
    pub severity: Severity,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Whether the site is inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Whether an escape-hatch annotation suppressed this finding. An
    /// allowed finding is demoted to `Note` and counted, not fatal.
    pub allowed: bool,
}

/// The final report: all findings (allowed and deny), plus scan stats.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub lines_scanned: usize,
}

impl Report {
    /// Deny findings (not suppressed) — these fail the build.
    pub fn deny(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny && !f.allowed)
    }

    /// Suppressed-by-annotation findings — reported and counted.
    pub fn allowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed)
    }

    pub fn deny_count(&self) -> usize {
        self.deny().count()
    }

    /// The human-readable table.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "argus_lint: scanned {} files / {} lines",
            self.files_scanned, self.lines_scanned
        );
        let denies: Vec<&Finding> = self.deny().collect();
        let allows: Vec<&Finding> = self.allowed().collect();
        if denies.is_empty() && allows.is_empty() {
            let _ = writeln!(s, "argus_lint: no findings — determinism contract holds");
            return s;
        }
        if !denies.is_empty() {
            let _ = writeln!(s, "\n  DENY ({}):", denies.len());
            for f in &denies {
                let _ = writeln!(
                    s,
                    "  {:4} {:18} {}:{}  {}{}",
                    f.rule_id,
                    f.slug,
                    f.file,
                    f.line,
                    f.message,
                    if f.in_test { "  [test]" } else { "" }
                );
            }
        }
        if !allows.is_empty() {
            let _ = writeln!(s, "\n  allowed by annotation ({}):", allows.len());
            for f in &allows {
                let _ = writeln!(s, "  {:4} {:18} {}:{}", f.rule_id, f.slug, f.file, f.line);
            }
        }
        let _ = writeln!(
            s,
            "\nargus_lint: {} deny, {} allowed",
            denies.len(),
            allows.len()
        );
        s
    }

    /// The machine-readable report (rule -> file:line -> severity).
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"lines_scanned\": {},", self.lines_scanned);
        let _ = writeln!(s, "  \"deny_count\": {},", self.deny_count());
        let _ = writeln!(s, "  \"allowed_count\": {},", self.allowed().count());
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let sev = if f.allowed {
                "allowed"
            } else {
                f.severity.as_str()
            };
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"slug\": {}, \"file\": {}, \"line\": {}, \
                 \"severity\": {}, \"in_test\": {}, \"message\": {}}}",
                json_str(&f.rule_id),
                json_str(&f.slug),
                json_str(&f.file),
                f.line,
                json_str(sev),
                f.in_test,
                json_str(&f.message),
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(allowed: bool) -> Finding {
        Finding {
            rule_id: "D1".into(),
            slug: "wall-clock".into(),
            severity: Severity::Deny,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "wall-clock read `Instant`".into(),
            in_test: false,
            allowed,
        }
    }

    #[test]
    fn deny_vs_allowed_accounting() {
        let r = Report {
            findings: vec![sample(false), sample(true)],
            files_scanned: 1,
            lines_scanned: 10,
        };
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.allowed().count(), 1);
        let table = r.render_table();
        assert!(table.contains("1 deny, 1 allowed"), "{table}");
        assert!(table.contains("crates/x/src/lib.rs:7"), "{table}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = Report {
            findings: vec![sample(false)],
            files_scanned: 1,
            lines_scanned: 10,
        };
        let j = r.render_json();
        assert!(j.contains("\"deny_count\": 1"), "{j}");
        assert!(j.contains("\"rule\": \"D1\""), "{j}");
        assert!(j.contains("\"file\": \"crates/x/src/lib.rs\""), "{j}");
        // Escaping: a quote in a message must not break the line.
        assert!(json_str("a\"b").contains("\\\""));
    }
}
