//! The pattern rules D1–D5 of the determinism/actor contract
//! (DESIGN.md §10). Each rule is an independent scan over one file's
//! token stream; D6 (the actor message graph) is cross-file and lives in
//! [`crate::graph`].

use crate::lexer::{is_seq, Lexed, Tok, TokKind};
use crate::report::{Finding, Severity};

/// Identity and prose of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Short id, `D1`…`D7`.
    pub id: &'static str,
    /// The slug used in `// lint: allow(<slug>)` escape hatches.
    pub slug: &'static str,
    /// One-line description for the report header.
    pub title: &'static str,
}

/// The rule catalog, in id order.
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        id: "D1",
        slug: "wall-clock",
        title: "no wall-clock reads (Instant::now / SystemTime) outside the bench crate",
    },
    RuleInfo {
        id: "D2",
        slug: "unordered-iter",
        title: "no iteration over HashMap/HashSet — use BTreeMap or an explicit sort",
    },
    RuleInfo {
        id: "D3",
        slug: "unbounded-channel",
        title: "all channels bounded; sync_channel caps must be named constants",
    },
    RuleInfo {
        id: "D4",
        slug: "stray-thread",
        title: "thread spawn/scope confined to the actor control plane",
    },
    RuleInfo {
        id: "D5",
        slug: "unseeded-rng",
        title: "no thread_rng / OS entropy outside seeded-RNG constructors",
    },
    RuleInfo {
        id: "D6",
        slug: "actor-graph",
        title: "acyclic request/reply stage graph; single producer per mailbox",
    },
    RuleInfo {
        id: "D7",
        slug: "reply-arity",
        title: "every oneshot reply sender is consumed exactly once on all paths",
    },
    RuleInfo {
        id: "LA",
        slug: "lint-annotation",
        title: "escape-hatch annotations must name a known rule and give a reason",
    },
];

/// Looks a rule up by escape-hatch slug.
pub fn rule_by_slug(slug: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.slug == slug)
}

/// Methods whose receiver order leaks into results when the receiver is
/// an unordered map/set.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Entropy-sourced RNG constructors (D5).
const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "from_os_rng"];

fn finding(rule: &'static RuleInfo, rel: &str, t: &Tok, message: String, in_test: bool) -> Finding {
    Finding {
        rule_id: rule.id.to_string(),
        slug: rule.slug.to_string(),
        severity: Severity::Deny,
        file: rel.to_string(),
        line: t.line,
        message,
        in_test,
        allowed: false,
    }
}

/// D1 — wall-clock reads. `Instant::now` and any use of `SystemTime`.
pub fn wall_clock(rel: &str, lexed: &Lexed) -> Vec<Finding> {
    let rule = &RULES[0];
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let hit = match t.text.as_str() {
            "Instant" => is_seq(toks, i + 1, &["::", "now"]),
            "SystemTime" => true,
            _ => false,
        };
        if hit {
            out.push(finding(
                rule,
                rel,
                t,
                format!("wall-clock read `{}`", t.text),
                lexed.in_test(t.line),
            ));
        }
    }
    out
}

/// D2 — iteration over `HashMap`/`HashSet`.
///
/// Pass 1 records the names of bindings, fields and parameters declared
/// with a `HashMap`/`HashSet` type (or initialized from a `HashMap::…`
/// constructor) in this file; pass 2 flags order-leaking method calls and
/// `for … in` loops over those names. The tracking is per-file by
/// design: a cross-file false positive (a `Vec` elsewhere sharing a
/// field name) would be worse than asking the declaring file to convert
/// or annotate.
pub fn unordered_iter(rel: &str, lexed: &Lexed) -> Vec<Finding> {
    let rule = &RULES[1];
    let toks = &lexed.toks;
    let mut names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        if let Some(name) = declared_name(toks, i) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        // `name.iter()` -style order-leaking method calls.
        if t.kind == TokKind::Ident
            && names.iter().any(|n| n == &t.text)
            && is_seq(toks, i + 1, &["."])
            && toks
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && toks.get(i + 3).is_some_and(|p| p.text == "(")
        {
            out.push(finding(
                rule,
                rel,
                t,
                format!(
                    "iteration over unordered `{}` via `.{}()`",
                    t.text,
                    toks[i + 2].text
                ),
                lexed.in_test(t.line),
            ));
        }
        // `for … in [&[mut]] [path.]name {` loops.
        if t.text == "for" {
            if let Some(f) = for_loop_over(toks, i, &names) {
                out.push(finding(
                    rule,
                    rel,
                    f,
                    format!("`for` loop over unordered `{}`", f.text),
                    lexed.in_test(f.line),
                ));
            }
        }
    }
    out
}

/// The declared name a `HashMap`/`HashSet` token at `i` binds to, if the
/// surrounding tokens are a declaration site.
fn declared_name(toks: &[Tok], i: usize) -> Option<String> {
    // Walk back over a path prefix (`std :: collections ::`).
    let mut k = i;
    while k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == TokKind::Ident {
        k -= 2;
    }
    // Walk back over reference/lifetime/mut decoration (`&'a mut`).
    let mut p = k.checked_sub(1)?;
    while toks[p].text == "&"
        || toks[p].text == "mut"
        || toks[p].kind == TokKind::Lifetime
        || toks[p].text == "'"
    {
        p = p.checked_sub(1)?;
    }
    match toks[p].text.as_str() {
        // `name: HashMap<…>` — field, param or typed let.
        ":" => {
            let cand = toks.get(p.checked_sub(1)?)?;
            (cand.kind == TokKind::Ident).then(|| cand.text.clone())
        }
        // `… = HashMap::new()` — let binding or reassignment.
        "=" => {
            let before = toks.get(p.checked_sub(1)?)?;
            if before.kind == TokKind::Ident && before.text != "let" {
                // `name = …` or `let name = …` (the ident right before `=`).
                Some(before.text.clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// If the `for` loop starting at `i` iterates one of `names`, the
/// offending token.
fn for_loop_over<'t>(toks: &'t [Tok], i: usize, names: &[String]) -> Option<&'t Tok> {
    // Find `in` within a short window (patterns are simple in practice).
    let window = &toks[i..toks.len().min(i + 24)];
    let in_off = window.iter().position(|t| t.text == "in")?;
    let mut j = i + in_off + 1;
    // Skip `&`, `mut`.
    while toks
        .get(j)
        .is_some_and(|t| t.text == "&" || t.text == "mut")
    {
        j += 1;
    }
    // Accept `a.b.c` chains; the final ident before `{` is the operand.
    let mut last: Option<&Tok> = None;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Ident {
            last = Some(t);
            j += 1;
            if toks.get(j).is_some_and(|n| n.text == ".") {
                j += 1;
                continue;
            }
        }
        break;
    }
    let last = last?;
    (toks.get(j).is_some_and(|t| t.text == "{") && names.iter().any(|n| n == &last.text))
        .then_some(last)
}

/// D3 — channel boundedness. `mpsc::channel` is forbidden outright;
/// `sync_channel(cap)` requires `cap` to be a named (SCREAMING_SNAKE)
/// constant, possibly path-qualified.
pub fn unbounded_channel(rel: &str, lexed: &Lexed) -> Vec<Finding> {
    let rule = &RULES[2];
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text == "mpsc" && is_seq(toks, i + 1, &["::", "channel"]) {
            out.push(finding(
                rule,
                rel,
                t,
                "unbounded `mpsc::channel` — use a bounded `sync_channel`".to_string(),
                lexed.in_test(t.line),
            ));
        }
        if t.text == "sync_channel" {
            let mut j = i + 1;
            // Skip a turbofish `::<…>`.
            if toks.get(j).is_some_and(|t| t.text == "::")
                && toks.get(j + 1).is_some_and(|t| t.text == "<")
            {
                let mut depth = 0usize;
                j += 1;
                while let Some(t2) = toks.get(j) {
                    match t2.text.as_str() {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if toks.get(j).is_some_and(|t| t.text == "(") {
                if let Some(msg) = check_cap_arg(toks, j + 1) {
                    out.push(finding(rule, rel, t, msg, lexed.in_test(t.line)));
                }
            }
        }
    }
    out
}

/// Checks the first argument of a `sync_channel(` call starting right
/// after the paren; `Some(message)` if it is not a named constant.
fn check_cap_arg(toks: &[Tok], start: usize) -> Option<String> {
    // Collect the argument's tokens up to the matching `,` or `)`.
    let mut depth = 0usize;
    let mut arg: Vec<&Tok> = Vec::new();
    for t in &toks[start..] {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" if depth == 0 => break,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => break,
            _ => {}
        }
        arg.push(t);
    }
    if arg.is_empty() {
        return Some("`sync_channel` with no capacity argument".to_string());
    }
    if arg.len() == 1 && arg[0].kind == TokKind::Number {
        return Some(format!(
            "`sync_channel({})` — the cap must be a named constant",
            arg[0].text
        ));
    }
    // Accept a path whose final segment is SCREAMING_SNAKE.
    let is_path = arg.iter().enumerate().all(|(k, t)| {
        if k % 2 == 0 {
            t.kind == TokKind::Ident
        } else {
            t.text == "::"
        }
    });
    let last_is_const = arg.last().is_some_and(|t| is_screaming_snake(&t.text));
    if is_path && last_is_const {
        None
    } else {
        let expr: String = arg
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join("");
        Some(format!(
            "`sync_channel({expr})` — the cap must be a named constant"
        ))
    }
}

fn is_screaming_snake(s: &str) -> bool {
    s.len() >= 2
        && s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// D4 — thread spawning outside the actor control plane.
pub fn stray_thread(rel: &str, lexed: &Lexed) -> Vec<Finding> {
    let rule = &RULES[3];
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text == "thread"
            && toks.get(i + 1).is_some_and(|p| p.text == "::")
            && toks
                .get(i + 2)
                .is_some_and(|m| matches!(m.text.as_str(), "spawn" | "scope" | "Builder"))
        {
            out.push(finding(
                rule,
                rel,
                t,
                format!(
                    "`thread::{}` outside the actor control plane",
                    toks[i + 2].text
                ),
                lexed.in_test(t.line),
            ));
        }
    }
    out
}

/// D5 — entropy-sourced randomness.
pub fn unseeded_rng(rel: &str, lexed: &Lexed) -> Vec<Finding> {
    let rule = &RULES[4];
    let mut out = Vec::new();
    for t in &lexed.toks {
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(finding(
                rule,
                rel,
                t,
                format!(
                    "entropy-sourced RNG `{}` — derive from the seeded RngFactory",
                    t.text
                ),
                lexed.in_test(t.line),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn d1_fires_on_instant_now_and_system_time() {
        let lexed = lex("let t = std::time::Instant::now();\nlet s = SystemTime::now();");
        let f = wall_clock("x.rs", &lexed);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn d1_ignores_instant_type_without_now() {
        let lexed = lex("fn wait(deadline: Instant) {}");
        assert!(wall_clock("x.rs", &lexed).is_empty());
    }

    #[test]
    fn d2_tracks_declarations_and_flags_iteration() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) -> u32 { s.m.values().sum() }\n\
                   fn g(s: &S) { for (k, v) in &s.m { let _ = (k, v); } }\n";
        let lexed = lex(src);
        let f = unordered_iter("x.rs", &lexed);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn d2_ignores_point_lookups_and_vecs() {
        let src = "let mut m = HashMap::new();\nm.insert(1, 2);\nlet _ = m.get(&1);\n\
                   let v: Vec<u32> = vec![];\nfor x in &v { let _ = x; }\nlet _ = v.iter();";
        let lexed = lex(src);
        assert!(unordered_iter("x.rs", &lexed).is_empty());
    }

    #[test]
    fn d3_requires_named_caps() {
        let lexed = lex("let (a, b) = sync_channel(4096);\nlet (c, d) = sync_channel::<M>(CAP);\nlet (e, f) = mpsc::channel();");
        let f = unbounded_channel("x.rs", &lexed);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 1); // literal cap
        assert_eq!(f[1].line, 3); // unbounded channel
    }

    #[test]
    fn d3_accepts_qualified_consts() {
        let lexed = lex("let (a, b) = sync_channel(super::MAILBOX_CAP);");
        assert!(unbounded_channel("x.rs", &lexed).is_empty());
    }

    #[test]
    fn d4_fires_on_spawn_scope_builder() {
        let lexed =
            lex("std::thread::spawn(|| {});\nthread::scope(|s| {});\nthread::Builder::new();");
        assert_eq!(stray_thread("x.rs", &lexed).len(), 3);
    }

    #[test]
    fn d5_fires_on_entropy_sources() {
        let lexed = lex("let mut r = rand::thread_rng();\nlet s = StdRng::from_entropy();");
        assert_eq!(unseeded_rng("x.rs", &lexed).len(), 2);
    }
}
