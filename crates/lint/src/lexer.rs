//! A hand-rolled Rust lexer: just enough tokenization for the pattern
//! engine, with no dependency on `syn` or `proc-macro2` (the build
//! environment has no registry access, and the lint must stay
//! dependency-free so it can gate CI before anything else builds).
//!
//! The lexer understands exactly the constructs that would otherwise
//! produce false positives in a grep-style scan:
//!
//! * line comments (harvested for `// lint: allow(<rule>) — <reason>`
//!   escape hatches), nested block comments;
//! * string literals (plain, byte, and raw with arbitrary `#` guards) —
//!   a pattern string like `"Instant::now"` in source never matches;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * `#[cfg(test)] mod … { … }` regions, tracked by brace matching so
//!   findings inside unit-test modules can be labelled as test code.
//!
//! Output is a flat token stream with line numbers; `::` is fused into a
//! single token because every pattern in the rule set is path-shaped.

/// What a token is, as far as the pattern engine cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including suffixes, hex, etc.).
    Number,
    /// String, byte-string or raw-string literal.
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; `::` is one token, everything else is a single char.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// An escape-hatch annotation harvested from a line comment:
/// `// lint: allow(<rule-slug>) — <reason>`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line of the comment itself.
    pub line: u32,
    /// The rule slug inside `allow(...)`.
    pub rule: String,
    /// Whether a non-empty reason follows the closing paren (after an
    /// em-dash, en-dash or plain hyphen separator).
    pub has_reason: bool,
}

/// A fully lexed file.
#[derive(Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<Allow>,
    /// Inclusive line ranges covered by `#[cfg(test)] mod … { … }`.
    pub test_ranges: Vec<(u32, u32)>,
}

impl Lexed {
    /// Whether a line falls inside a `#[cfg(test)]` module.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// The line of the first token strictly after `line` — the code line
    /// a standalone annotation comment applies to.
    pub fn next_token_line(&self, line: u32) -> Option<u32> {
        self.toks.iter().map(|t| t.line).find(|&l| l > line)
    }
}

/// Lexes one file's source text.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut allows = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // Doc comments (`///`, `//!`) describe the annotation
                // grammar; only plain `//` comments carry directives.
                let is_doc = text.starts_with("///") || text.starts_with("//!");
                if !is_doc {
                    if let Some(a) = parse_allow(&text, line) {
                        allows.push(a);
                    }
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let (ni, nl) = skip_string(&b, i, line);
                toks.push(tok(TokKind::Str, "\"…\"", line));
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime or char literal.
                let n1 = b.get(i + 1).copied();
                let n2 = b.get(i + 2).copied();
                let is_lifetime =
                    matches!(n1, Some(c2) if c2.is_alphanumeric() || c2 == '_') && n2 != Some('\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    toks.push(tok(
                        TokKind::Lifetime,
                        &b[start..i].iter().collect::<String>(),
                        line,
                    ));
                } else {
                    // Char literal: consume to the closing quote, honoring
                    // a single backslash escape.
                    i += 1;
                    if b.get(i) == Some(&'\\') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    // Unicode escapes (`'\u{..}'`) leave trailing chars.
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(tok(TokKind::Char, "'…'", line));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(tok(
                    TokKind::Number,
                    &b[start..i].iter().collect::<String>(),
                    line,
                ));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // Raw / byte string literals: `r"…"`, `r#"…"#`, `b"…"`,
                // `br#"…"#` — the prefix lexes as an ident, the body must
                // be skipped as a string.
                let raw_like = matches!(text.as_str(), "r" | "b" | "br" | "rb");
                if raw_like && matches!(b.get(i), Some('"') | Some('#')) {
                    let (ni, nl) = skip_raw_string(&b, i, line);
                    toks.push(tok(TokKind::Str, "r\"…\"", line));
                    i = ni;
                    line = nl;
                } else {
                    toks.push(tok(TokKind::Ident, &text, line));
                }
            }
            ':' if b.get(i + 1) == Some(&':') => {
                toks.push(tok(TokKind::Punct, "::", line));
                i += 2;
            }
            _ => {
                toks.push(tok(TokKind::Punct, &c.to_string(), line));
                i += 1;
            }
        }
    }
    let test_ranges = find_test_ranges(&toks);
    Lexed {
        toks,
        allows,
        test_ranges,
    }
}

fn tok(kind: TokKind, text: &str, line: u32) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
    }
}

/// Skips a plain (or byte) string literal starting at the opening quote;
/// returns the index after the closing quote and the updated line.
fn skip_string(b: &[char], mut i: usize, mut line: u32) -> (usize, u32) {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return (i + 1, line),
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

/// Skips a raw string body starting at the `#`s/quote after the `r`/`br`
/// prefix; returns the index after the closing delimiter.
fn skip_raw_string(b: &[char], mut i: usize, mut line: u32) -> (usize, u32) {
    let mut hashes = 0usize;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&'"') {
        return (i, line); // not actually a raw string; bail gracefully
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (j, line);
            }
        }
        i += 1;
    }
    (i, line)
}

/// Parses `lint: allow(<slug>)` out of one line comment, if present.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let idx = comment.find("lint: allow(")?;
    let rest = &comment[idx + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = &rest[close + 1..];
    // Reason separator: em-dash, en-dash, or plain hyphen, then text.
    let has_reason = ['—', '–', '-'].iter().any(|d| {
        tail.split(*d)
            .nth(1)
            .map(str::trim)
            .is_some_and(|r| r.len() >= 3)
    });
    Some(Allow {
        line,
        rule,
        has_reason,
    })
}

/// Finds `#[cfg(test)] mod … { … }` regions by brace matching.
fn find_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_seq(toks, i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            // Skip any further attributes, then expect `mod`.
            let mut j = i + 7;
            while toks.get(j).map(|t| t.text.as_str()) == Some("#") {
                // Skip a balanced `#[...]`.
                let mut depth = 0usize;
                j += 1;
                while let Some(t) = toks.get(j) {
                    match t.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if toks.get(j).map(|t| t.text.as_str()) == Some("mod") {
                // Find the opening brace, then match it.
                while let Some(t) = toks.get(j) {
                    if t.text == "{" {
                        break;
                    }
                    j += 1;
                }
                let start_line = toks[i].line;
                let mut depth = 0usize;
                while let Some(t) = toks.get(j) {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                out.push((start_line, t.line));
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
            }
        }
        i += 1;
    }
    out
}

/// Whether the token texts starting at `i` equal `pat` exactly.
pub fn is_seq(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.len() <= toks.len().saturating_sub(i)
        && pat.iter().zip(&toks[i..]).all(|(p, t)| t.text == *p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let lexed = lex(r##"
            // Instant::now in a comment
            let s = "Instant::now";
            let r = r#"HashMap"#;
            let c = 'x';
        "##);
        assert!(!lexed.toks.iter().any(|t| t.text == "Instant"));
        assert!(!lexed.toks.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(!lexed.toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn allow_annotations_are_harvested() {
        let lexed = lex("// lint: allow(wall-clock) — bench harness\nlet t = 1;\n// lint: allow(unordered-iter)\n");
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "wall-clock");
        assert!(lexed.allows[0].has_reason);
        assert!(!lexed.allows[1].has_reason);
        assert_eq!(lexed.next_token_line(1), Some(2));
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n";
        let lexed = lex(src);
        assert_eq!(lexed.test_ranges, vec![(2, 5)]);
        assert!(lexed.in_test(4));
        assert!(!lexed.in_test(1));
    }

    #[test]
    fn path_sep_is_one_token() {
        let lexed = lex("std::time::Instant::now()");
        let texts: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["std", "::", "time", "::", "Instant", "::", "now", "(", ")"]
        );
    }
}
