//! D6 — the actor message-graph check.
//!
//! Parses the files under `crates/core/src/actors/` and reconstructs the
//! stage graph statically:
//!
//! - An `enum XMsg { … }` definition makes the defining file (its stem)
//!   a *stage* owning mailbox `XMsg`.
//! - A declaration `name: StageHandle<XMsg>` (struct field or binding)
//!   records that the declaring stage holds a handle to `XMsg`'s owner.
//! - A `handle.send(…)` / `handle.request(…)` / `handle.run_inline(…)`
//!   site in stage S is a producer edge S → owner(XMsg) when `handle`
//!   is a known `StageHandle` name in S.
//!
//! Two properties are enforced:
//!
//! 1. **Single producer per mailbox** — the FIFO-causality argument in
//!    DESIGN.md §9 only holds when exactly one stage feeds each mailbox.
//! 2. **Acyclic request graph** — a cycle of blocking `request` edges
//!    can deadlock: every stage in the cycle waits on a reply that can
//!    only be produced by a stage waiting behind it.

use crate::lexer::{Lexed, TokKind};
use crate::report::{Finding, Severity};
use std::collections::BTreeMap;

/// One actor-plane source file, already lexed.
pub struct ActorFile<'a> {
    /// Repo-relative path, for findings.
    pub rel: &'a str,
    /// File stem (`driver`, `planner`, …) — the stage identity.
    pub stem: &'a str,
    pub lexed: &'a Lexed,
}

fn finding(rel: &str, line: u32, message: String) -> Finding {
    Finding {
        rule_id: "D6".to_string(),
        slug: "actor-graph".to_string(),
        severity: Severity::Deny,
        file: rel.to_string(),
        line,
        message,
        in_test: false,
        allowed: false,
    }
}

/// Runs the message-graph analysis over the actor-plane files.
pub fn check(files: &[ActorFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();

    // Mailbox ownership: Msg type name -> owning stage stem.
    let mut owner: BTreeMap<String, String> = BTreeMap::new();
    for f in files {
        let toks = &f.lexed.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.text == "enum" {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident && n.text.ends_with("Msg") && n.text.len() > 3 {
                        owner.insert(n.text.clone(), f.stem.to_string());
                    }
                }
            }
        }
    }

    // Handle declarations per stage: stage -> handle name -> Msg type.
    // And producer edges: Msg type -> sorted set of (stage, line).
    let mut handles: BTreeMap<&str, BTreeMap<String, String>> = BTreeMap::new();
    for f in files {
        let toks = &f.lexed.toks;
        let entry = handles.entry(f.stem).or_default();
        for (i, t) in toks.iter().enumerate() {
            // `name : StageHandle < XMsg >`
            if t.text == "StageHandle"
                && i >= 2
                && toks[i - 1].text == ":"
                && toks[i - 2].kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.text == "<")
            {
                if let Some(m) = toks.get(i + 2) {
                    if owner.contains_key(&m.text) {
                        entry.insert(toks[i - 2].text.clone(), m.text.clone());
                    }
                }
            }
        }
    }

    // Producer edges and request edges.
    let mut producers: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
    let mut requests: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in files {
        let toks = &f.lexed.toks;
        let my_handles = match handles.get(f.stem) {
            Some(h) => h,
            None => continue,
        };
        for (i, t) in toks.iter().enumerate() {
            let is_send_site = matches!(t.text.as_str(), "send" | "request" | "run_inline")
                && toks.get(i + 1).is_some_and(|p| p.text == "(")
                && i >= 2
                && toks[i - 1].text == ".";
            if !is_send_site {
                continue;
            }
            // Receiver: `handle.` or `self.handle.`
            let mut r = i - 2;
            if toks[r].kind != TokKind::Ident {
                continue;
            }
            let name = toks[r].text.clone();
            if r >= 2 && toks[r - 1].text == "." && toks[r - 2].text == "self" {
                r -= 2;
                let _ = r;
            }
            if let Some(msg) = my_handles.get(&name) {
                producers
                    .entry(msg.clone())
                    .or_default()
                    .push((f.stem.to_string(), t.line));
                if t.text == "request" || t.text == "run_inline" {
                    let to = owner[msg].clone();
                    requests.entry(f.stem.to_string()).or_default().push(to);
                }
            }
        }
    }

    // 1. Single producer per mailbox.
    for (msg, sites) in &producers {
        let mut stages: Vec<&str> = sites.iter().map(|(s, _)| s.as_str()).collect();
        stages.sort_unstable();
        stages.dedup();
        if stages.len() > 1 {
            let (stage0, line0) = &sites[0];
            let rel = files
                .iter()
                .find(|f| f.stem == stage0)
                .map(|f| f.rel)
                .unwrap_or("crates/core/src/actors");
            out.push(finding(
                rel,
                *line0,
                format!(
                    "mailbox `{msg}` has multiple producers ({}); the FIFO-causality \
                     argument requires exactly one",
                    stages.join(", ")
                ),
            ));
        }
    }

    // 2. Acyclic request graph (DFS from every stage).
    let stages: Vec<&String> = requests.keys().collect();
    for start in &stages {
        let mut path = vec![start.as_str()];
        if let Some(cycle) = dfs_cycle(&requests, start, &mut path) {
            let rel = files
                .iter()
                .find(|f| f.stem == start.as_str())
                .map(|f| f.rel)
                .unwrap_or("crates/core/src/actors");
            out.push(finding(
                rel,
                1,
                format!(
                    "blocking request cycle through stages: {} — static deadlock risk",
                    cycle.join(" -> ")
                ),
            ));
            // One report per start stage is enough.
        }
    }
    // A cycle of k stages is found k times (once per member as start);
    // keep the lexicographically first report only.
    out.sort_by(|a, b| (a.message.len(), &a.message).cmp(&(b.message.len(), &b.message)));
    out.dedup_by(|a, b| cycle_equiv(&a.message, &b.message));
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

fn dfs_cycle<'a>(
    requests: &'a BTreeMap<String, Vec<String>>,
    node: &'a str,
    path: &mut Vec<&'a str>,
) -> Option<Vec<String>> {
    if let Some(nexts) = requests.get(node) {
        for next in nexts {
            if let Some(pos) = path.iter().position(|s| s == next) {
                let mut cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                cycle.push(next.clone());
                return Some(cycle);
            }
            path.push(next);
            if let Some(c) = dfs_cycle(requests, next, path) {
                return Some(c);
            }
            path.pop();
        }
    }
    None
}

/// Whether two cycle messages describe the same rotation of one cycle.
fn cycle_equiv(a: &str, b: &str) -> bool {
    let set = |m: &str| -> Vec<String> {
        let mut v: Vec<String> = m
            .split(&[':', ' '][..])
            .filter(|s| !s.is_empty() && *s != "->")
            .map(|s| s.to_string())
            .collect();
        v.sort();
        v.dedup();
        v
    };
    a.contains("request cycle") && b.contains("request cycle") && set(a) == set(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn actor<'a>(rel: &'a str, stem: &'a str, lexed: &'a Lexed) -> ActorFile<'a> {
        ActorFile { rel, stem, lexed }
    }

    #[test]
    fn star_topology_is_clean() {
        let driver = lex(
            "struct D { planner: StageHandle<PlannerMsg>, metrics: StageHandle<MetricsMsg> }\n\
                          fn f(d: &D) { d.planner.request(()); d.metrics.send(()); }",
        );
        let planner = lex("enum PlannerMsg { A }");
        let metrics = lex("enum MetricsMsg { A }");
        let files = [
            actor("a/driver.rs", "driver", &driver),
            actor("a/planner.rs", "planner", &planner),
            actor("a/metrics.rs", "metrics", &metrics),
        ];
        assert!(check(&files).is_empty());
    }

    #[test]
    fn request_cycle_is_flagged() {
        let a = lex("enum AMsg { X }\nstruct SA { b: StageHandle<BMsg> }\nfn f(s: &SA) { s.b.request(()); }");
        let b = lex("enum BMsg { X }\nstruct SB { a: StageHandle<AMsg> }\nfn f(s: &SB) { s.a.request(()); }");
        let files = [actor("x/a.rs", "a", &a), actor("x/b.rs", "b", &b)];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("request cycle"), "{}", f[0].message);
    }

    #[test]
    fn multi_producer_is_flagged() {
        let a = lex("enum AMsg { X }");
        let b = lex("struct SB { a: StageHandle<AMsg> }\nfn f(s: &SB) { s.a.send(()); }");
        let c = lex("struct SC { a: StageHandle<AMsg> }\nfn f(s: &SC) { s.a.send(()); }");
        let files = [
            actor("x/a.rs", "a", &a),
            actor("x/b.rs", "b", &b),
            actor("x/c.rs", "c", &c),
        ];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("multiple producers"),
            "{}",
            f[0].message
        );
    }
}
