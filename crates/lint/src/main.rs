//! CLI: `argus_lint [--root <dir>] [--json <path>]`
//!
//! Scans the workspace, prints the human-readable table, writes
//! `LINT_REPORT.json`, and exits nonzero when any deny finding remains.

use argus_lint::{run, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                let Some(v) = args.next() else {
                    eprintln!("argus_lint: --root needs a value");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            "--json" => {
                let Some(v) = args.next() else {
                    eprintln!("argus_lint: --json needs a value");
                    return ExitCode::from(2);
                };
                json_path = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "argus_lint — determinism & actor-safety checks (DESIGN.md §10)\n\
                     usage: argus_lint [--root <dir>] [--json <path>]\n\
                     default json output: <root>/LINT_REPORT.json"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("argus_lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = Config::for_repo(&root);
    let rep = match run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("argus_lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", rep.render_table());
    let json_path = json_path.unwrap_or_else(|| root.join("LINT_REPORT.json"));
    if let Err(e) = std::fs::write(&json_path, rep.render_json()) {
        eprintln!("argus_lint: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    println!("argus_lint: report written to {}", json_path.display());
    if rep.deny_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
