//! argus_lint — the determinism & actor-safety static analysis pass.
//!
//! An offline, dependency-free checker for the determinism contract of
//! DESIGN.md §2/§9/§10: a simulation run must be a pure function of
//! `(policy, trace, seed)`, and the actor control plane must be
//! statically deadlock-free. Rules:
//!
//! - **D1 `wall-clock`** — no `Instant::now` / `SystemTime` outside the
//!   bench crate or an annotated site.
//! - **D2 `unordered-iter`** — no iteration over `HashMap`/`HashSet`;
//!   use `BTreeMap` or sort explicitly.
//! - **D3 `unbounded-channel`** — `mpsc::channel()` forbidden;
//!   `sync_channel` caps must be named constants.
//! - **D4 `stray-thread`** — `thread::spawn`/`scope` confined to
//!   `crates/core/src/actors/`.
//! - **D5 `unseeded-rng`** — no `thread_rng`/OS entropy.
//! - **D6 `actor-graph`** — single producer per mailbox, acyclic
//!   blocking-request graph.
//! - **D7 `reply-arity`** — every oneshot reply sender is consumed
//!   exactly once on all paths: no dropped, leaked or double-sent
//!   replies.
//!
//! Escape hatch: `// lint: allow(<slug>) — <reason>` on the line above
//! (or on) the site. Allowed sites are demoted to notes, counted, and
//! listed in the report; a missing or empty reason is itself a deny.

pub mod graph;
pub mod lexer;
pub mod replies;
pub mod report;
pub mod rules;

use report::{Finding, Report, Severity};
use std::path::{Path, PathBuf};

/// What to scan and what the per-rule allowlists are. Paths are
/// repo-relative prefixes with `/` separators.
#[derive(Debug, Clone)]
pub struct Config {
    /// Repo root; all findings are reported relative to it.
    pub root: PathBuf,
    /// Directories (relative to root) to walk for `.rs` files.
    pub scan_dirs: Vec<String>,
    /// Path prefixes to skip entirely.
    pub exclude: Vec<String>,
    /// Prefixes where D1 wall-clock reads are expected (benchmarks).
    pub wall_clock_allow: Vec<String>,
    /// Prefixes where D4 thread spawning is the point (the actor plane
    /// and the planner's data-parallel solve live here).
    pub thread_allow: Vec<String>,
    /// The directory holding the actor stages, for the D6 graph check.
    pub actors_dir: String,
}

impl Config {
    /// The workspace configuration used by CI.
    pub fn for_repo(root: impl Into<PathBuf>) -> Self {
        Config {
            root: root.into(),
            scan_dirs: vec![
                "crates".into(),
                "src".into(),
                "tests".into(),
                "examples".into(),
            ],
            exclude: vec![
                "crates/lint/tests/fixtures".into(),
                "crates/shims".into(),
                "target".into(),
            ],
            wall_clock_allow: vec!["crates/bench/".into()],
            thread_allow: vec!["crates/core/src/actors/".into()],
            actors_dir: "crates/core/src/actors".into(),
        }
    }
}

/// Runs the full lint over `cfg` and returns the report, findings
/// sorted by (file, line, rule).
pub fn run(cfg: &Config) -> std::io::Result<Report> {
    let mut files = collect_files(cfg)?;
    files.sort();
    let mut rep = Report::default();
    let mut actor_sources: Vec<(String, String, String)> = Vec::new(); // (rel, stem, src)

    for rel in &files {
        let abs = cfg.root.join(rel);
        let src = std::fs::read_to_string(&abs)?;
        rep.files_scanned += 1;
        rep.lines_scanned += src.lines().count();
        let lexed = lexer::lex(&src);
        let mut file_findings: Vec<Finding> = Vec::new();

        if !has_prefix(rel, &cfg.wall_clock_allow) {
            file_findings.extend(rules::wall_clock(rel, &lexed));
        }
        file_findings.extend(rules::unordered_iter(rel, &lexed));
        file_findings.extend(rules::unbounded_channel(rel, &lexed));
        if !has_prefix(rel, &cfg.thread_allow) {
            file_findings.extend(rules::stray_thread(rel, &lexed));
        }
        file_findings.extend(rules::unseeded_rng(rel, &lexed));

        // Apply escape hatches: an allow for the right slug on the
        // finding's own line, or whose next token line is the finding's.
        let mut used = vec![false; lexed.allows.len()];
        for f in &mut file_findings {
            for (ai, a) in lexed.allows.iter().enumerate() {
                if a.rule != f.slug {
                    continue;
                }
                let covers = a.line == f.line || lexed.next_token_line(a.line) == Some(f.line);
                if covers {
                    used[ai] = true;
                    if a.has_reason {
                        f.allowed = true;
                    } else {
                        // The annotation matched but lacks a reason:
                        // keep the deny and add an annotation finding.
                    }
                }
            }
        }
        // Annotation-grammar findings: unknown slug, missing reason, or
        // an allow that suppresses nothing (stale).
        for (ai, a) in lexed.allows.iter().enumerate() {
            if rules::rule_by_slug(&a.rule).is_none() {
                file_findings.push(Finding {
                    rule_id: "LA".into(),
                    slug: "lint-annotation".into(),
                    severity: Severity::Deny,
                    file: rel.clone(),
                    line: a.line,
                    message: format!("allow names unknown rule `{}`", a.rule),
                    in_test: lexed.in_test(a.line),
                    allowed: false,
                });
            } else if !a.has_reason {
                file_findings.push(Finding {
                    rule_id: "LA".into(),
                    slug: "lint-annotation".into(),
                    severity: Severity::Deny,
                    file: rel.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) without a reason — write `// lint: allow({}) — <why>`",
                        a.rule, a.rule
                    ),
                    in_test: lexed.in_test(a.line),
                    allowed: false,
                });
            } else if !used[ai] {
                file_findings.push(Finding {
                    rule_id: "LA".into(),
                    slug: "lint-annotation".into(),
                    severity: Severity::Deny,
                    file: rel.clone(),
                    line: a.line,
                    message: format!("stale allow({}) — it suppresses nothing", a.rule),
                    in_test: lexed.in_test(a.line),
                    allowed: false,
                });
            }
        }

        rep.findings.append(&mut file_findings);
        if rel.starts_with(&cfg.actors_dir) {
            let stem = Path::new(rel)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("")
                .to_string();
            actor_sources.push((rel.clone(), stem, src));
        }
    }

    // D6 and D7 are cross-file: lex the actor plane again together.
    let lexed: Vec<(String, String, lexer::Lexed)> = actor_sources
        .into_iter()
        .map(|(rel, stem, src)| {
            let l = lexer::lex(&src);
            (rel, stem, l)
        })
        .collect();
    let actor_files: Vec<graph::ActorFile<'_>> = lexed
        .iter()
        .map(|(rel, stem, l)| graph::ActorFile {
            rel,
            stem,
            lexed: l,
        })
        .collect();
    rep.findings.extend(graph::check(&actor_files));
    rep.findings.extend(replies::check(&actor_files));

    rep.findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule_id).cmp(&(&b.file, b.line, &b.rule_id)));
    Ok(rep)
}

fn has_prefix(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}

/// Collects repo-relative `.rs` paths under the configured scan dirs,
/// skipping excluded prefixes. The walk is sorted for a deterministic
/// report.
fn collect_files(cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for dir in &cfg.scan_dirs {
        let abs = cfg.root.join(dir);
        if abs.is_dir() {
            walk(&cfg.root, &abs, &cfg.exclude, &mut out)?;
        } else if abs.is_file() && dir.ends_with(".rs") {
            out.push(dir.clone());
        }
    }
    Ok(out)
}

fn walk(root: &Path, dir: &Path, exclude: &[String], out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if exclude.iter().any(|x| rel.starts_with(x.as_str())) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, exclude, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}
