//! D7 — the reply-channel arity check.
//!
//! A [`oneshot`] reply channel is a rendezvous of depth 1: the requester
//! blocks in `request()` until the stage sends exactly one reply, and
//! panics if the sender is dropped unsent. Arity bugs are therefore
//! deadlocks or panics waiting to happen, and they are all statically
//! visible in the actor-plane sources:
//!
//! 1. **Created but never consumed** — a `let (tx, rx) = oneshot()`
//!    whose sender never appears again, or a `oneshot()` call that is
//!    not destructured at all, leaks a sender the requester will wait
//!    on forever.
//! 2. **Bound but never sent** — a match arm that destructures a
//!    `OneshotSender`-typed field out of a message and never calls
//!    `.send(…)` on it drops the reply; the blocked requester panics.
//! 3. **Dropped in the pattern** — an arm over a reply-carrying variant
//!    that omits the reply field (`..` or a missing binding) drops the
//!    sender before the body even runs.
//! 4. **Sent twice on one path** — two `.send(…)` calls on the same
//!    binding in the same block both execute; the second blocks forever
//!    on the depth-1 buffer. (Sends in sibling branches are fine and
//!    are not flagged.)
//!
//! Like D6, this is a cross-file pass over `crates/core/src/actors/`:
//! reply fields are harvested from the `enum …Msg` definitions and the
//! arms are checked wherever the variants are matched.

use crate::graph::ActorFile;
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Severity};

fn finding(rel: &str, line: u32, message: String) -> Finding {
    Finding {
        rule_id: "D7".to_string(),
        slug: "reply-arity".to_string(),
        severity: Severity::Deny,
        file: rel.to_string(),
        line,
        message,
        in_test: false,
        allowed: false,
    }
}

/// A `OneshotSender`-typed field of one enum variant.
struct ReplyField {
    enum_name: String,
    variant: String,
    field: String,
}

/// Runs the reply-arity analysis over the actor-plane files.
pub fn check(files: &[ActorFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();

    // Reply fields are harvested across all files first (a stage may
    // match on a message type defined in a sibling file).
    let mut fields: Vec<ReplyField> = Vec::new();
    for f in files {
        harvest_reply_fields(&f.lexed.toks, &mut fields);
    }

    for f in files {
        check_oneshot_bindings(f, &mut out);
        check_match_arms(f, &fields, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Index of the matching close delimiter for the open delimiter at `i`,
/// counting `(`/`[`/`{` uniformly.
fn matching_close(toks: &[Tok], i: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(i) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Collects `field: OneshotSender<…>` declarations from every
/// `enum … { Variant { … } }` body in the token stream.
fn harvest_reply_fields(toks: &[Tok], out: &mut Vec<ReplyField>) {
    for (i, t) in toks.iter().enumerate() {
        if t.text != "enum" {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        // Find the enum body `{`, skipping generics if any.
        let mut b = i + 2;
        while toks.get(b).is_some_and(|t| t.text != "{") && b < i + 16 {
            b += 1;
        }
        let Some(end) = matching_close(toks, b) else {
            continue;
        };
        // Variants: `Ident {` at depth 1 of the enum body.
        let mut depth = 0usize;
        let mut j = b;
        while j < end {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {
                    if depth == 1
                        && toks[j].kind == TokKind::Ident
                        && toks.get(j + 1).is_some_and(|t| t.text == "{")
                    {
                        let variant = toks[j].text.clone();
                        if let Some(vend) = matching_close(toks, j + 1) {
                            collect_fields(&toks[j + 2..vend], &name.text, &variant, out);
                            // Jump past the variant body; its braces were
                            // never counted, so `depth` stays at 1.
                            j = vend;
                        }
                    }
                }
            }
            j += 1;
        }
    }
}

/// `field : [path ::] OneshotSender` sites inside one variant body.
fn collect_fields(body: &[Tok], enum_name: &str, variant: &str, out: &mut Vec<ReplyField>) {
    for (k, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident || body.get(k + 1).is_none_or(|c| c.text != ":") {
            continue;
        }
        let mut ty = k + 2;
        // Skip a path prefix like `super ::` or `crate :: actors ::`.
        while body.get(ty + 1).is_some_and(|s| s.text == "::") {
            ty += 2;
        }
        if body.get(ty).is_some_and(|n| n.text == "OneshotSender") {
            out.push(ReplyField {
                enum_name: enum_name.to_string(),
                variant: variant.to_string(),
                field: t.text.clone(),
            });
        }
    }
}

/// Checks every `oneshot()` call site: it must be destructured
/// `let (tx, rx) = oneshot()` and `tx` must be consumed later.
fn check_oneshot_bindings(f: &ActorFile<'_>, out: &mut Vec<Finding>) {
    let toks = &f.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        let is_call = t.text == "oneshot"
            && toks.get(i + 1).is_some_and(|p| p.text == "(")
            && toks.get(i + 2).is_some_and(|p| p.text == ")");
        if !is_call {
            continue;
        }
        // Skip the definition (`fn oneshot…`) and path tails (`::oneshot`
        // is still a call; `fn` right before is not).
        if i >= 1 && toks[i - 1].text == "fn" {
            continue;
        }
        // Walk back over an optional path prefix to the `=`.
        let mut p = i;
        while p >= 2 && toks[p - 1].text == "::" {
            p -= 2;
        }
        // Expect `let ( tx , rx ) = oneshot()`.
        let bound = (|| -> Option<String> {
            if p < 6 || toks[p - 1].text != "=" || toks[p - 2].text != ")" {
                return None;
            }
            // Find the `(` opening the tuple pattern.
            let close = p - 2;
            let mut open = close;
            let mut depth = 0usize;
            loop {
                match toks[open].text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                open = open.checked_sub(1)?;
            }
            if open == 0 || toks[open - 1].text != "let" {
                return None;
            }
            let pat: Vec<&Tok> = toks[open + 1..close]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .collect();
            (pat.len() == 2).then(|| pat[0].text.clone())
        })();
        match bound {
            None => out.push(finding(
                f.rel,
                t.line,
                "`oneshot()` not destructured — bind it as `let (tx, rx) = oneshot()` \
                 so the sender can be consumed"
                    .to_string(),
            )),
            Some(tx) => {
                let used_later = toks[i + 3..]
                    .iter()
                    .any(|u| u.kind == TokKind::Ident && u.text == tx);
                if !used_later {
                    out.push(finding(
                        f.rel,
                        t.line,
                        format!(
                            "reply sender `{tx}` is never consumed — the requester \
                             blocks forever on a dropped channel"
                        ),
                    ));
                }
            }
        }
    }
}

/// Checks each match arm over a reply-carrying variant: the reply field
/// must be bound, and the binding must be sent exactly once per path.
fn check_match_arms(f: &ActorFile<'_>, fields: &[ReplyField], out: &mut Vec<Finding>) {
    let toks = &f.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        // `Enum :: Variant { … } =>`
        if t.kind != TokKind::Ident
            || toks.get(i + 1).is_none_or(|s| s.text != "::")
            || toks.get(i + 3).is_none_or(|b| b.text != "{")
        {
            continue;
        }
        let Some(variant) = toks.get(i + 2) else {
            continue;
        };
        let Some(pat_end) = matching_close(toks, i + 3) else {
            continue;
        };
        // `=>` lexes as two punct tokens.
        let is_arm = toks.get(pat_end + 1).is_some_and(|a| a.text == "=")
            && toks.get(pat_end + 2).is_some_and(|a| a.text == ">");
        if !is_arm {
            continue; // construction site, not a match arm
        }
        for rf in fields {
            if rf.enum_name != t.text || rf.variant != variant.text {
                continue;
            }
            let pat = &toks[i + 4..pat_end];
            let Some(bound) = binding_for(pat, &rf.field) else {
                out.push(finding(
                    f.rel,
                    t.line,
                    format!(
                        "arm for `{}::{}` drops reply channel `{}` — bind it and send \
                         exactly once",
                        rf.enum_name, rf.variant, rf.field
                    ),
                ));
                continue;
            };
            let (body_start, body_end) = arm_body(toks, pat_end + 3);
            let sends = sends_per_block(&toks[body_start..body_end], &bound);
            if sends.is_empty() {
                out.push(finding(
                    f.rel,
                    t.line,
                    format!(
                        "reply channel `{bound}` bound in `{}::{}` arm but never sent — \
                         the requester panics on the dropped reply",
                        rf.enum_name, rf.variant
                    ),
                ));
            } else if let Some(&(_, line)) = sends
                .iter()
                .find(|(blk, _)| sends.iter().filter(|(b2, _)| b2 == blk).count() >= 2)
            {
                out.push(finding(
                    f.rel,
                    line,
                    format!(
                        "reply channel `{bound}` sent more than once on the same path in \
                         `{}::{}` arm — the second send blocks forever",
                        rf.enum_name, rf.variant
                    ),
                ));
            }
        }
    }
}

/// The name `field` is bound to in an arm pattern, if it is bound at all.
/// `field: other` renames; `field: _` and an absent field both drop.
fn binding_for(pat: &[Tok], field: &str) -> Option<String> {
    for (k, t) in pat.iter().enumerate() {
        if t.text != *field || t.kind != TokKind::Ident {
            continue;
        }
        if pat.get(k + 1).is_some_and(|c| c.text == ":") {
            let renamed = pat.get(k + 2)?;
            return (renamed.kind == TokKind::Ident).then(|| renamed.text.clone());
        }
        return Some(t.text.clone());
    }
    None
}

/// Token range of the arm body starting at `start` (just after `=>`):
/// a braced block, or an expression ending at the first `,`/`}` at
/// relative depth zero.
fn arm_body(toks: &[Tok], start: usize) -> (usize, usize) {
    if toks.get(start).is_some_and(|t| t.text == "{") {
        let end = matching_close(toks, start).unwrap_or(toks.len());
        return (start + 1, end);
    }
    let mut depth = 0isize;
    for (j, t) in toks.iter().enumerate().skip(start) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" if depth == 0 => return (start, j),
            "}" => depth -= 1,
            "," if depth == 0 => return (start, j),
            _ => {}
        }
    }
    (start, toks.len())
}

/// `(block-id, line)` of every `name.send(` site in an arm body, where
/// block ids distinguish sibling `{ … }` blocks so branch-exclusive
/// sends are not conflated.
fn sends_per_block(body: &[Tok], name: &str) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut next_id = 1u32;
    let mut stack: Vec<u32> = vec![0];
    for (k, t) in body.iter().enumerate() {
        match t.text.as_str() {
            "{" => {
                stack.push(next_id);
                next_id += 1;
            }
            "}" => {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
            _ => {
                if t.kind == TokKind::Ident
                    && t.text == name
                    && body.get(k + 1).is_some_and(|d| d.text == ".")
                    && body.get(k + 2).is_some_and(|m| m.text == "send")
                    && body.get(k + 3).is_some_and(|p| p.text == "(")
                {
                    out.push((*stack.last().unwrap_or(&0), t.line));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, Lexed};

    fn actor<'a>(rel: &'a str, stem: &'a str, lexed: &'a Lexed) -> ActorFile<'a> {
        ActorFile { rel, stem, lexed }
    }

    #[test]
    fn clean_request_reply_passes() {
        let src = lex("enum AMsg { Get { k: u64, reply: OneshotSender<u64> } }\n\
             fn h(m: AMsg) { match m { AMsg::Get { k, reply } => reply.send(k), } }\n\
             fn r() { let (tx, rx) = oneshot(); use_it(tx); rx.recv() }");
        let files = [actor("a/a.rs", "a", &src)];
        assert!(check(&files).is_empty(), "{:?}", check(&files));
    }

    #[test]
    fn unsent_binding_is_flagged() {
        let src = lex("enum AMsg { Get { reply: OneshotSender<u64> } }\n\
             fn h(m: AMsg) { match m { AMsg::Get { reply } => { let _ = 1; } } }");
        let files = [actor("a/a.rs", "a", &src)];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never sent"), "{}", f[0].message);
    }

    #[test]
    fn dropped_field_is_flagged() {
        let src = lex("enum AMsg { Get { k: u64, reply: OneshotSender<u64> } }\n\
             fn h(m: AMsg) { match m { AMsg::Get { k, .. } => use_it(k), } }");
        let files = [actor("a/a.rs", "a", &src)];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("drops reply"), "{}", f[0].message);
    }

    #[test]
    fn double_send_same_block_is_flagged_but_branches_are_not() {
        let twice = lex(
            "enum AMsg { Get { reply: OneshotSender<u64> } }\n\
             fn h(m: AMsg) { match m { AMsg::Get { reply } => { reply.send(1); reply.send(2); } } }",
        );
        let files = [actor("a/a.rs", "a", &twice)];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("more than once"), "{}", f[0].message);

        let branchy = lex("enum AMsg { Get { c: bool, reply: OneshotSender<u64> } }\n\
             fn h(m: AMsg) { match m { AMsg::Get { c, reply } => {\n\
                 if c { reply.send(1); } else { reply.send(2); } } } }");
        let files = [actor("a/a.rs", "a", &branchy)];
        assert!(check(&files).is_empty(), "{:?}", check(&files));
    }

    #[test]
    fn leaked_oneshot_is_flagged() {
        let src = lex("fn r() { let (tx, rx) = oneshot(); let _ = rx; }");
        let files = [actor("a/a.rs", "a", &src)];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never consumed"), "{}", f[0].message);
    }

    #[test]
    fn undestructured_oneshot_is_flagged() {
        let src = lex("fn r() { let pair = oneshot(); use_it(pair); }");
        let files = [actor("a/a.rs", "a", &src)];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("not destructured"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn cross_file_enum_defs_are_seen() {
        let stage = lex("enum AMsg { Get { reply: OneshotSender<u64> } }");
        let user = lex("fn h(m: AMsg) { match m { AMsg::Get { reply } => drop(reply), } }");
        let files = [actor("a/a.rs", "a", &stage), actor("a/b.rs", "b", &user)];
        let f = check(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].file.ends_with("b.rs"));
    }
}
