//! # argus-cluster — GPU workers as explicit state machines
//!
//! The paper's testbed is 8 A100 workers, each running one model variant
//! in a Docker container (§4.7). This crate models each worker's state —
//! assigned approximation level, resident model weights, FIFO queue,
//! in-flight job, background model loads, and failures — plus the
//! bookkeeping the evaluation needs (busy-time integral for the §5.7
//! utilization numbers, switch counts for the variant-switching-overhead
//! analysis).
//!
//! Two behaviours from §4.6 are modelled faithfully:
//!
//! * **Loads happen in the background**: a worker keeps serving its
//!   current model while the next variant loads (80 GB HBM holds two
//!   diffusion models), so switching costs throughput, not downtime.
//! * **Level changes within AC are free**: adjusting the skip step `K`
//!   needs no load, because every AC level runs the same SD-XL weights.
//!
//! The discrete-event loop lives in `argus-core`; this crate provides the
//! passive state machines it drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use argus_des::{SimDuration, SimTime};
use argus_models::{latency::Loader, ApproxLevel, GpuArch, ModelVariant};

/// Identifier of a job queued on a worker (the core maps these to
/// prompts).
pub type JobId = u64;

/// Identifier of a worker within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub usize);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Maximum co-resident model variants per GPU (§4.6: 80 GB HBM holds two
/// diffusion models during switches).
pub const MAX_RESIDENT_MODELS: usize = 2;

/// Result of assigning a new approximation level to a worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchOutcome {
    /// The required weights are already resident; the level is active
    /// immediately (always the case within AC).
    Immediate,
    /// A background load of the returned duration began; the worker keeps
    /// serving its previous level until [`Worker::finish_load`] is called.
    Loading(SimDuration),
}

/// One GPU worker.
#[derive(Debug, Clone)]
pub struct Worker {
    id: WorkerId,
    gpu: GpuArch,
    /// The level the worker currently serves.
    level: Option<ApproxLevel>,
    /// Background load in progress: target level and completion time.
    pending: Option<(ApproxLevel, SimTime)>,
    /// Weights resident in HBM, most recently used last.
    resident: Vec<ModelVariant>,
    queue: std::collections::VecDeque<(JobId, SimTime)>,
    /// Jobs currently executing as one (possibly batched) pass, with their
    /// expected completion time. Unbatched serving keeps at most one entry.
    in_flight: Vec<(JobId, SimTime)>,
    failed: bool,
    /// Preemption-warning drain: the worker finishes its in-flight pass
    /// but accepts no new work, and the dispatcher stops selecting it
    /// (it drops out of [`Cluster::alive`]). Billing continues — a
    /// draining spot instance is still rented until it disappears.
    draining: bool,
    /// HBM capacity in co-resident model variants. Argus keeps
    /// [`MAX_RESIDENT_MODELS`] (§4.6); systems that swap the serving model
    /// in place run with a single slot and pay a load on every switch.
    hbm_slots: usize,
    // --- statistics ---
    busy: SimDuration,
    busy_since: Option<SimTime>,
    created_at: SimTime,
    failed_total: SimDuration,
    failed_since: Option<SimTime>,
    completed: u64,
    loads: u64,
}

impl Worker {
    /// Creates an idle worker with no model loaded.
    pub fn new(id: WorkerId, gpu: GpuArch) -> Self {
        Worker {
            id,
            gpu,
            level: None,
            pending: None,
            resident: Vec::new(),
            queue: std::collections::VecDeque::new(),
            in_flight: Vec::new(),
            failed: false,
            draining: false,
            hbm_slots: MAX_RESIDENT_MODELS,
            busy: SimDuration::ZERO,
            busy_since: None,
            created_at: SimTime::ZERO,
            failed_total: SimDuration::ZERO,
            failed_since: None,
            completed: 0,
            loads: 0,
        }
    }

    /// Creates a worker mid-run, in the *provisioning* state: it counts
    /// as failed (invisible to dispatch, unbilled) until the caller
    /// brings it up with [`Worker::recover`] at the end of the cloud
    /// provisioning delay. `at` anchors its utilization accounting so
    /// pre-birth time never dilutes the busy fraction.
    pub fn provisioning(id: WorkerId, gpu: GpuArch, at: SimTime) -> Self {
        let mut w = Worker::new(id, gpu);
        w.created_at = at;
        w.failed = true;
        w.failed_since = Some(at);
        w
    }

    /// The worker id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// The GPU architecture.
    pub fn gpu(&self) -> GpuArch {
        self.gpu
    }

    /// The currently served approximation level.
    pub fn level(&self) -> Option<ApproxLevel> {
        self.level
    }

    /// The level being loaded in the background, if any.
    pub fn pending_level(&self) -> Option<ApproxLevel> {
        self.pending.map(|(l, _)| l)
    }

    /// Whether the worker has failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Whether the worker is draining ahead of a preemption (see
    /// [`Worker::begin_drain`]).
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// When the worker was created (run start, or the provisioning
    /// instant for workers added by a scale-out).
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// Whether a job is currently executing.
    pub fn is_busy(&self) -> bool {
        !self.in_flight.is_empty()
    }

    /// Number of queued (not yet started) jobs.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of jobs executing in the current (possibly batched) pass.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Queued plus in-flight job count — the `queue_w` of Eq. 3. A batch
    /// of `b` in-flight jobs counts as `b`.
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    /// Resident model variants.
    pub fn resident_models(&self) -> &[ModelVariant] {
        &self.resident
    }

    /// Sets the HBM capacity in co-resident model variants.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn set_hbm_slots(&mut self, slots: usize) {
        assert!(slots > 0, "a worker needs at least one HBM slot");
        self.hbm_slots = slots;
        while self.resident.len() > self.hbm_slots {
            self.resident.remove(0);
        }
    }

    /// The HBM capacity in co-resident model variants.
    pub fn hbm_slots(&self) -> usize {
        self.hbm_slots
    }

    /// Assigns a new approximation level at time `now`.
    ///
    /// If the level's weights are resident the switch is immediate;
    /// otherwise a background load starts (Accelerate loader, Table 2) and
    /// the worker keeps serving its old level until [`Worker::finish_load`].
    ///
    /// # Panics
    /// Panics if the worker has failed.
    pub fn assign_level(&mut self, level: ApproxLevel, now: SimTime) -> SwitchOutcome {
        assert!(!self.failed, "cannot assign a level to a failed worker");
        let model = level.resident_model();
        if self.resident.contains(&model) {
            // Mark as most recently used.
            self.resident.retain(|&m| m != model);
            self.resident.push(model);
            self.level = Some(level);
            self.pending = None;
            return SwitchOutcome::Immediate;
        }
        let load =
            SimDuration::from_secs(argus_models::latency::load_secs(model, Loader::Accelerate));
        self.pending = Some((level, now + load));
        self.loads += 1;
        SwitchOutcome::Loading(load)
    }

    /// Completes the background load (call at the time reported by
    /// [`SwitchOutcome::Loading`]). Evicts the least-recently-used resident
    /// model if HBM would exceed [`MAX_RESIDENT_MODELS`]. No-op if the load
    /// was superseded or the worker failed meanwhile.
    pub fn finish_load(&mut self, now: SimTime) {
        if self.failed {
            return;
        }
        let Some((level, ready_at)) = self.pending else {
            return;
        };
        if now < ready_at {
            return;
        }
        let model = level.resident_model();
        self.resident.push(model);
        while self.resident.len() > self.hbm_slots {
            self.resident.remove(0);
        }
        self.level = Some(level);
        self.pending = None;
    }

    /// Pre-warms the worker with `level` active and its weights resident,
    /// without a load delay. Models pre-deployment warm-up: production
    /// clusters load models before accepting traffic (§4.7).
    ///
    /// # Panics
    /// Panics if the worker has failed.
    pub fn preload(&mut self, level: ApproxLevel) {
        assert!(!self.failed, "cannot preload a failed worker");
        let model = level.resident_model();
        if !self.resident.contains(&model) {
            self.resident.push(model);
            while self.resident.len() > self.hbm_slots {
                self.resident.remove(0);
            }
        }
        self.level = Some(level);
        self.pending = None;
    }

    /// Adds a job to the tail of the queue.
    ///
    /// # Panics
    /// Panics if the worker has failed.
    pub fn enqueue(&mut self, job: JobId, now: SimTime) {
        assert!(!self.failed, "cannot enqueue on a failed worker");
        assert!(!self.draining, "cannot enqueue on a draining worker");
        self.queue.push_back((job, now));
    }

    /// The job at the head of the queue, if any (the one
    /// [`Worker::try_start`] would start next). Lets the caller compute a
    /// job-specific service time before starting it.
    pub fn peek_next_job(&self) -> Option<JobId> {
        self.queue.front().map(|&(j, _)| j)
    }

    /// Queued job ids in FIFO order (the prefix a batched start would
    /// drain). Lets the caller compute per-job service estimates before
    /// committing to [`Worker::try_start_batch`].
    pub fn queued_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.queue.iter().map(|&(j, _)| j)
    }

    /// The first currently executing job, if any. Callers that schedule
    /// one completion event per (possibly batched) start use this to
    /// detect events made stale by a failure.
    pub fn in_flight_job(&self) -> Option<JobId> {
        self.in_flight.first().map(|&(j, _)| j)
    }

    /// All currently executing jobs, in start order.
    pub fn in_flight_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.in_flight.iter().map(|&(j, _)| j)
    }

    /// Whether this worker could start a job right now (idle, serving a
    /// level, not failed or draining, queue non-empty).
    pub fn can_start(&self) -> bool {
        !self.failed
            && !self.draining
            && self.in_flight.is_empty()
            && self.level.is_some()
            && !self.queue.is_empty()
    }

    /// Starts the next queued job if the worker is idle and serving a
    /// level. Returns the job and its queue-entry time; the caller decides
    /// the service duration and later calls [`Worker::finish_job`].
    pub fn try_start(&mut self, now: SimTime, service: SimDuration) -> Option<(JobId, SimTime)> {
        if self.failed || self.draining || !self.in_flight.is_empty() || self.level.is_none() {
            return None;
        }
        let (job, enqueued_at) = self.queue.pop_front()?;
        self.in_flight.push((job, now + service));
        self.busy_since = Some(now);
        Some((job, enqueued_at))
    }

    /// Starts up to `count` queued jobs as one batched pass that completes
    /// together after `service`. Returns the started job ids (empty if the
    /// worker is failed, busy, level-less, or has an empty queue).
    pub fn try_start_batch(
        &mut self,
        now: SimTime,
        service: SimDuration,
        count: usize,
    ) -> Vec<JobId> {
        if self.failed || self.draining || !self.in_flight.is_empty() || self.level.is_none() {
            return Vec::new();
        }
        let n = count.min(self.queue.len());
        let mut started = Vec::with_capacity(n);
        for _ in 0..n {
            let (job, _) = self.queue.pop_front().expect("count bounded by queue");
            self.in_flight.push((job, now + service));
            started.push(job);
        }
        if !started.is_empty() {
            self.busy_since = Some(now);
        }
        started
    }

    /// Completes the in-flight job at time `now`.
    ///
    /// # Panics
    /// Panics if no job is in flight; debug-panics if a batch of more than
    /// one job is in flight (use [`Worker::finish_batch`]).
    pub fn finish_job(&mut self, now: SimTime) -> JobId {
        debug_assert!(
            self.in_flight.len() <= 1,
            "batch in flight; use finish_batch"
        );
        assert!(!self.in_flight.is_empty(), "no job in flight");
        self.finish_batch(now)[0]
    }

    /// Completes every in-flight job of the current (possibly batched)
    /// pass at time `now`, returning the jobs in start order.
    ///
    /// # Panics
    /// Panics if no job is in flight.
    pub fn finish_batch(&mut self, now: SimTime) -> Vec<JobId> {
        assert!(!self.in_flight.is_empty(), "no job in flight");
        if let Some(since) = self.busy_since.take() {
            self.busy += now - since;
        }
        self.completed += self.in_flight.len() as u64;
        self.in_flight.drain(..).map(|(j, _)| j).collect()
    }

    /// Begins a preemption-warning drain: queued jobs are handed back for
    /// migration, the in-flight pass (if any) runs to completion, and no
    /// new work starts. The worker stays alive for utilization/billing
    /// until [`Worker::fail`] (the preemption firing) or
    /// [`Worker::recover`] (a cancelled preemption) ends the drain.
    /// No-op on a failed or already-draining worker.
    pub fn begin_drain(&mut self, _now: SimTime) -> Vec<JobId> {
        if self.failed || self.draining {
            return Vec::new();
        }
        self.draining = true;
        self.queue.drain(..).map(|(j, _)| j).collect()
    }

    /// Fails the worker at `now`, returning every job it held (queued and
    /// in-flight) so the caller can reroute or count them as violations.
    pub fn fail(&mut self, now: SimTime) -> Vec<JobId> {
        if self.failed {
            return Vec::new();
        }
        self.failed = true;
        self.draining = false;
        self.failed_since = Some(now);
        if let Some(since) = self.busy_since.take() {
            self.busy += now - since;
        }
        let mut lost: Vec<JobId> = self.queue.drain(..).map(|(j, _)| j).collect();
        lost.extend(self.in_flight.drain(..).map(|(j, _)| j));
        self.pending = None;
        // Weights are gone: the container restarts cold.
        self.resident.clear();
        self.level = None;
        lost
    }

    /// Recovers a failed worker at `now` (cold: no model resident; the
    /// allocator must assign a level, incurring a load).
    pub fn recover(&mut self, now: SimTime) {
        if !self.failed {
            // A recover aimed at a draining worker cancels the drain (the
            // preemption warning was a false alarm); on a healthy worker
            // it stays the documented no-op.
            self.draining = false;
            return;
        }
        self.failed = false;
        self.draining = false;
        if let Some(since) = self.failed_since.take() {
            self.failed_total += now - since;
        }
    }

    /// Cumulative busy time (in-flight execution only).
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        let mut b = self.busy;
        if let Some(since) = self.busy_since {
            b += now - since;
        }
        b
    }

    /// Fraction of non-failed wall-clock time spent executing jobs.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let mut down = self.failed_total;
        if let Some(since) = self.failed_since {
            down += now - since;
        }
        let alive = (now - self.created_at).saturating_sub(down);
        if alive.is_zero() {
            0.0
        } else {
            self.busy_time(now) / alive
        }
    }

    /// Completed job count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Model-load (switch) count.
    pub fn loads(&self) -> u64 {
        self.loads
    }
}

/// A cluster of GPU workers. The paper's testbed is a fixed 8×A100 fleet
/// (§1), and a cluster built once and never grown reproduces it exactly;
/// the elastic-fleet subsystem additionally grows membership mid-run via
/// [`Cluster::provision`] (workers join in the provisioning state and
/// come up through [`Worker::recover`]) and shrinks it by failing or
/// draining workers in place — ids are stable for the whole run.
///
/// Production fleets also mix generations: [`Cluster::heterogeneous`]
/// builds per-architecture pools with contiguous worker ids, and the
/// allocator solves Eq. 1 per pool.
#[derive(Debug, Clone)]
pub struct Cluster {
    workers: Vec<Worker>,
}

impl Cluster {
    /// Creates `n` workers on the given architecture.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, gpu: GpuArch) -> Self {
        Self::heterogeneous(&[(gpu, n)])
    }

    /// Creates a cluster from per-architecture pools; worker ids are
    /// assigned contiguously in pool order. Pools with a zero count are
    /// skipped.
    ///
    /// # Panics
    /// Panics if the pools sum to zero workers.
    pub fn heterogeneous(pools: &[(GpuArch, usize)]) -> Self {
        let total: usize = pools.iter().map(|&(_, n)| n).sum();
        assert!(total > 0, "cluster needs at least one worker");
        let mut workers = Vec::with_capacity(total);
        for &(gpu, n) in pools {
            for _ in 0..n {
                workers.push(Worker::new(WorkerId(workers.len()), gpu));
            }
        }
        Cluster { workers }
    }

    /// Distinct architectures present, in first-appearance (pool) order.
    pub fn arches(&self) -> Vec<GpuArch> {
        let mut seen = Vec::new();
        for w in &self.workers {
            if !seen.contains(&w.gpu()) {
                seen.push(w.gpu());
            }
        }
        seen
    }

    /// Ids of dispatchable (non-failed, non-draining) workers on the
    /// given architecture.
    pub fn alive_on(&self, gpu: GpuArch) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| !w.is_failed() && !w.is_draining() && w.gpu() == gpu)
            .map(|w| w.id())
            .collect()
    }

    /// Adds a worker on `gpu` in the provisioning state (see
    /// [`Worker::provisioning`]): it joins dispatch only once the caller
    /// recovers it at the end of the provisioning delay. Returns the new
    /// worker's id (ids are append-only and never reused).
    pub fn provision(&mut self, gpu: GpuArch, at: SimTime) -> WorkerId {
        let id = WorkerId(self.workers.len());
        self.workers.push(Worker::provisioning(id, gpu, at));
        id
    }

    /// Number of workers (failed included).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the cluster is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Immutable worker access.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.0]
    }

    /// Mutable worker access.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn worker_mut(&mut self, id: WorkerId) -> &mut Worker {
        &mut self.workers[id.0]
    }

    /// Iterates over all workers.
    pub fn iter(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// Iterates mutably over all workers.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Worker> {
        self.workers.iter_mut()
    }

    /// Ids of dispatchable workers (not failed, not draining).
    pub fn alive(&self) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| !w.is_failed() && !w.is_draining())
            .map(|w| w.id())
            .collect()
    }

    /// Dispatchable workers currently serving (or loading toward)
    /// `level`.
    pub fn workers_at_level(&self, level: ApproxLevel) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| {
                !w.is_failed()
                    && !w.is_draining()
                    && (w.level() == Some(level) || w.pending_level() == Some(level))
            })
            .map(|w| w.id())
            .collect()
    }

    /// Mean utilization over alive workers.
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        let alive: Vec<&Worker> = self.workers.iter().filter(|w| !w.is_failed()).collect();
        if alive.is_empty() {
            return 0.0;
        }
        alive.iter().map(|w| w.utilization(now)).sum::<f64>() / alive.len() as f64
    }

    /// Total completed jobs.
    pub fn total_completed(&self) -> u64 {
        self.workers.iter().map(|w| w.completed()).sum()
    }

    /// Total model loads (variant switches requiring weight movement).
    pub fn total_loads(&self) -> u64 {
        self.workers.iter().map(|w| w.loads()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_models::{AcLevel, ModelVariant};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn ac_level_changes_are_immediate_after_base_load() {
        let mut w = Worker::new(WorkerId(0), GpuArch::A100);
        // First assignment: SD-XL must load.
        let out = w.assign_level(ApproxLevel::Ac(AcLevel(0)), t(0.0));
        let SwitchOutcome::Loading(d) = out else {
            panic!("expected load, got {out:?}");
        };
        assert!((d.as_secs() - 9.42).abs() < 1e-9); // Table 2 Accelerate
        assert_eq!(w.level(), None);
        w.finish_load(t(d.as_secs()));
        assert_eq!(w.level(), Some(ApproxLevel::Ac(AcLevel(0))));
        // Subsequent K changes are free (§4.6).
        for k in [5, 10, 25] {
            assert_eq!(
                w.assign_level(ApproxLevel::Ac(AcLevel(k)), t(20.0)),
                SwitchOutcome::Immediate
            );
            assert_eq!(w.level(), Some(ApproxLevel::Ac(AcLevel(k))));
        }
        assert_eq!(w.loads(), 1);
    }

    #[test]
    fn sm_switch_loads_in_background_while_serving() {
        let mut w = Worker::new(WorkerId(1), GpuArch::A100);
        w.assign_level(ApproxLevel::Sm(ModelVariant::SdXl), t(0.0));
        w.finish_load(t(9.42));
        // Begin switching to Tiny; the old level keeps serving.
        let out = w.assign_level(ApproxLevel::Sm(ModelVariant::TinySd), t(10.0));
        assert!(matches!(out, SwitchOutcome::Loading(_)));
        assert_eq!(w.level(), Some(ApproxLevel::Sm(ModelVariant::SdXl)));
        assert_eq!(
            w.pending_level(),
            Some(ApproxLevel::Sm(ModelVariant::TinySd))
        );
        w.enqueue(1, t(10.0));
        assert!(w.try_start(t(10.0), SimDuration::from_secs(4.2)).is_some());
        // Load completes; Tiny becomes active, both models resident.
        w.finish_load(t(13.0));
        assert_eq!(w.level(), Some(ApproxLevel::Sm(ModelVariant::TinySd)));
        assert_eq!(w.resident_models().len(), 2);
    }

    #[test]
    fn resident_memory_evicts_lru_beyond_two() {
        let mut w = Worker::new(WorkerId(2), GpuArch::A100);
        for v in [ModelVariant::SdXl, ModelVariant::Sd15, ModelVariant::TinySd] {
            w.assign_level(ApproxLevel::Sm(v), t(0.0));
            w.finish_load(t(100.0));
        }
        assert_eq!(
            w.resident_models(),
            &[ModelVariant::Sd15, ModelVariant::TinySd]
        );
        // Returning to a resident model is immediate; to an evicted one is
        // not.
        assert_eq!(
            w.assign_level(ApproxLevel::Sm(ModelVariant::Sd15), t(200.0)),
            SwitchOutcome::Immediate
        );
        assert!(matches!(
            w.assign_level(ApproxLevel::Sm(ModelVariant::SdXl), t(201.0)),
            SwitchOutcome::Loading(_)
        ));
    }

    #[test]
    fn fifo_queue_and_busy_accounting() {
        let mut w = Worker::new(WorkerId(3), GpuArch::A100);
        w.assign_level(ApproxLevel::Ac(AcLevel(0)), t(0.0));
        w.finish_load(t(9.42));
        w.enqueue(10, t(10.0));
        w.enqueue(11, t(10.5));
        assert_eq!(w.queue_len(), 2);
        assert_eq!(w.backlog(), 2);
        let (job, enq) = w.try_start(t(11.0), SimDuration::from_secs(4.2)).unwrap();
        assert_eq!(job, 10);
        assert_eq!(enq, t(10.0));
        assert!(w.is_busy());
        assert_eq!(w.backlog(), 2); // 1 queued + 1 in flight
                                    // Cannot start another while busy.
        assert!(w.try_start(t(11.5), SimDuration::from_secs(4.2)).is_none());
        assert_eq!(w.finish_job(t(15.2)), 10);
        assert!((w.busy_time(t(15.2)).as_secs() - 4.2).abs() < 1e-9);
        assert_eq!(w.completed(), 1);
        let (job, _) = w.try_start(t(15.2), SimDuration::from_secs(4.2)).unwrap();
        assert_eq!(job, 11);
    }

    #[test]
    fn batched_start_drains_fifo_and_finishes_together() {
        let mut w = Worker::new(WorkerId(8), GpuArch::A100);
        w.assign_level(ApproxLevel::Ac(AcLevel(25)), t(0.0));
        w.finish_load(t(9.42));
        for j in 0..5 {
            w.enqueue(j, t(10.0));
        }
        // Batch bounded by `count`, FIFO order preserved.
        let started = w.try_start_batch(t(10.0), SimDuration::from_secs(3.0), 3);
        assert_eq!(started, vec![0, 1, 2]);
        assert!(w.is_busy());
        assert_eq!(w.in_flight_count(), 3);
        assert_eq!(w.in_flight_job(), Some(0));
        assert_eq!(w.in_flight_jobs().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(w.backlog(), 5); // 2 queued + 3 in flight
        assert_eq!(w.queued_jobs().collect::<Vec<_>>(), vec![3, 4]);
        // Busy while the batch runs; cannot start another.
        assert!(w
            .try_start_batch(t(11.0), SimDuration::from_secs(3.0), 2)
            .is_empty());
        let done = w.finish_batch(t(13.0));
        assert_eq!(done, vec![0, 1, 2]);
        assert_eq!(w.completed(), 3);
        assert!((w.busy_time(t(13.0)).as_secs() - 3.0).abs() < 1e-9);
        // Remainder bounded by the queue.
        let started = w.try_start_batch(t(13.0), SimDuration::from_secs(3.0), 8);
        assert_eq!(started, vec![3, 4]);
    }

    #[test]
    fn failure_drains_whole_batch() {
        let mut w = Worker::new(WorkerId(9), GpuArch::A100);
        w.assign_level(ApproxLevel::Ac(AcLevel(0)), t(0.0));
        w.finish_load(t(9.42));
        for j in 0..4 {
            w.enqueue(j, t(10.0));
        }
        w.try_start_batch(t(10.0), SimDuration::from_secs(3.0), 3);
        let lost = w.fail(t(11.0));
        // Queued jobs first, then the in-flight batch in start order.
        assert_eq!(lost, vec![3, 0, 1, 2]);
        assert_eq!(w.in_flight_count(), 0);
    }

    #[test]
    fn idle_worker_without_level_cannot_start() {
        let mut w = Worker::new(WorkerId(4), GpuArch::A100);
        w.enqueue(1, t(0.0));
        assert!(w.try_start(t(0.0), SimDuration::from_secs(1.0)).is_none());
    }

    #[test]
    fn failure_drains_jobs_and_clears_state() {
        let mut w = Worker::new(WorkerId(5), GpuArch::A100);
        w.assign_level(ApproxLevel::Ac(AcLevel(10)), t(0.0));
        w.finish_load(t(9.42));
        w.enqueue(1, t(10.0));
        w.enqueue(2, t(10.1));
        w.try_start(t(10.2), SimDuration::from_secs(3.0));
        let lost = w.fail(t(11.0));
        assert_eq!(lost, vec![2, 1]); // queued jobs first, then the in-flight one
        assert!(w.is_failed());
        assert_eq!(w.level(), None);
        assert!(w.resident_models().is_empty());
        // Double-fail is a no-op.
        assert!(w.fail(t(12.0)).is_empty());
        // Recovery is cold.
        w.recover(t(50.0));
        assert!(!w.is_failed());
        assert!(matches!(
            w.assign_level(ApproxLevel::Ac(AcLevel(0)), t(50.0)),
            SwitchOutcome::Loading(_)
        ));
    }

    #[test]
    #[should_panic(expected = "failed worker")]
    fn enqueue_on_failed_worker_panics() {
        let mut w = Worker::new(WorkerId(6), GpuArch::A100);
        w.fail(t(0.0));
        w.enqueue(1, t(1.0));
    }

    #[test]
    fn utilization_excludes_failed_time() {
        let mut w = Worker::new(WorkerId(7), GpuArch::A100);
        w.assign_level(ApproxLevel::Ac(AcLevel(0)), t(0.0));
        w.finish_load(t(10.0));
        w.enqueue(1, t(10.0));
        w.try_start(t(10.0), SimDuration::from_secs(40.0));
        w.finish_job(t(50.0));
        // 40 busy seconds over 100 alive seconds.
        assert!((w.utilization(t(100.0)) - 0.4).abs() < 1e-9);
        // Fail for 100 s: utilization over alive time only.
        w.fail(t(100.0));
        w.recover(t(200.0));
        assert!((w.utilization(t(200.0)) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn cluster_views() {
        let mut c = Cluster::new(4, GpuArch::A100);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        let lvl = ApproxLevel::Ac(AcLevel(15));
        c.worker_mut(WorkerId(0)).assign_level(lvl, t(0.0));
        c.worker_mut(WorkerId(0)).finish_load(t(10.0));
        c.worker_mut(WorkerId(1)).assign_level(lvl, t(0.0));
        // Worker 1 still loading — counted via pending level.
        assert_eq!(c.workers_at_level(lvl).len(), 2);
        let lost = c.worker_mut(WorkerId(0)).fail(t(20.0));
        assert!(lost.is_empty());
        assert_eq!(c.alive().len(), 3);
        assert_eq!(c.workers_at_level(lvl), vec![WorkerId(1)]);
        assert_eq!(c.total_completed(), 0);
        assert_eq!(c.total_loads(), 2);
        assert!(c.mean_utilization(t(20.0)) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_cluster_rejected() {
        let _ = Cluster::new(0, GpuArch::A100);
    }

    #[test]
    fn heterogeneous_pools_get_contiguous_ids() {
        let c =
            Cluster::heterogeneous(&[(GpuArch::A100, 2), (GpuArch::A10G, 0), (GpuArch::V100, 3)]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.worker(WorkerId(0)).gpu(), GpuArch::A100);
        assert_eq!(c.worker(WorkerId(1)).gpu(), GpuArch::A100);
        for i in 2..5 {
            assert_eq!(c.worker(WorkerId(i)).gpu(), GpuArch::V100);
        }
        // Zero-count pools vanish entirely.
        assert_eq!(c.arches(), vec![GpuArch::A100, GpuArch::V100]);
    }

    #[test]
    fn alive_on_filters_by_arch_and_failure() {
        let mut c = Cluster::heterogeneous(&[(GpuArch::A100, 2), (GpuArch::A10G, 2)]);
        c.worker_mut(WorkerId(0)).fail(t(1.0));
        c.worker_mut(WorkerId(3)).fail(t(1.0));
        assert_eq!(c.alive_on(GpuArch::A100), vec![WorkerId(1)]);
        assert_eq!(c.alive_on(GpuArch::A10G), vec![WorkerId(2)]);
        assert_eq!(c.alive_on(GpuArch::V100), Vec::<WorkerId>::new());
        assert_eq!(c.alive().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn all_zero_pools_rejected() {
        let _ = Cluster::heterogeneous(&[(GpuArch::A100, 0), (GpuArch::V100, 0)]);
    }

    #[test]
    fn drain_hands_back_queue_and_finishes_in_flight() {
        let mut w = Worker::new(WorkerId(10), GpuArch::A100);
        w.assign_level(ApproxLevel::Ac(AcLevel(0)), t(0.0));
        w.finish_load(t(9.42));
        for j in 0..3 {
            w.enqueue(j, t(10.0));
        }
        w.try_start(t(10.0), SimDuration::from_secs(4.0));
        let migrated = w.begin_drain(t(11.0));
        assert_eq!(migrated, vec![1, 2]); // in-flight job 0 keeps running
        assert!(w.is_draining());
        assert!(!w.is_failed());
        assert_eq!(w.in_flight_count(), 1);
        assert!(!w.can_start());
        assert!(w.try_start(t(11.5), SimDuration::from_secs(4.0)).is_none());
        // Double-drain is a no-op.
        assert!(w.begin_drain(t(11.5)).is_empty());
        // The pass completes normally during the warning window.
        assert_eq!(w.finish_job(t(14.0)), 0);
        // The preemption fires: nothing left to lose, drain state clears.
        assert!(w.fail(t(40.0)).is_empty());
        assert!(!w.is_draining());
    }

    #[test]
    fn recover_cancels_a_drain() {
        let mut w = Worker::new(WorkerId(11), GpuArch::A100);
        w.assign_level(ApproxLevel::Ac(AcLevel(0)), t(0.0));
        w.finish_load(t(9.42));
        w.begin_drain(t(10.0));
        assert!(w.is_draining());
        w.recover(t(12.0));
        assert!(!w.is_draining());
        assert!(!w.is_failed());
        // The level survived the cancelled preemption (no cold restart).
        assert_eq!(w.level(), Some(ApproxLevel::Ac(AcLevel(0))));
    }

    #[test]
    fn draining_workers_leave_the_dispatch_set() {
        let mut c = Cluster::new(3, GpuArch::A100);
        c.worker_mut(WorkerId(1)).begin_drain(t(1.0));
        assert_eq!(c.alive(), vec![WorkerId(0), WorkerId(2)]);
        assert_eq!(c.alive_on(GpuArch::A100).len(), 2);
        // Still not failed: billing-style views can see it.
        assert!(!c.worker(WorkerId(1)).is_failed());
    }

    #[test]
    fn provisioned_worker_joins_after_recover() {
        let mut c = Cluster::new(2, GpuArch::A100);
        let id = c.provision(GpuArch::A10G, t(100.0));
        assert_eq!(id, WorkerId(2));
        assert_eq!(c.len(), 3);
        // Invisible to dispatch until recovered.
        assert_eq!(c.alive().len(), 2);
        assert!(c.worker(id).is_failed());
        assert_eq!(c.worker(id).created_at(), t(100.0));
        c.worker_mut(id).recover(t(190.0));
        assert_eq!(c.alive().len(), 3);
        assert_eq!(c.alive_on(GpuArch::A10G), vec![id]);
        // Fresh workers start cold with zero utilization.
        assert_eq!(c.worker(id).utilization(t(200.0)), 0.0);
        assert_eq!(c.arches(), vec![GpuArch::A100, GpuArch::A10G]);
    }
}
