//! Quickstart: serve a Twitter-shaped trace with Argus and print the
//! headline metrics next to a static SD-XL baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use argus::core::{Policy, RunConfig};
use argus::workload::twitter_like;

fn main() {
    let minutes = 60;
    let trace = twitter_like(42, minutes);
    println!(
        "Workload: Twitter-shaped, {} minutes, {:.0}–{:.0} QPM (mean {:.0})",
        minutes,
        trace.trough(),
        trace.peak(),
        trace.mean()
    );
    println!("Cluster : 8×A100, SLO = 12.6 s (3× SD-XL latency)\n");

    println!(
        "{:>12}  {:>10}  {:>8}  {:>8}  {:>8}  {:>6}",
        "system", "throughput", "quality", "rel.q", "SLO-viol", "util"
    );
    for policy in [Policy::Argus, Policy::ClipperHa, Policy::ClipperHt] {
        let outcome = RunConfig::new(policy, trace.clone()).with_seed(42).run();
        println!(
            "{:>12}  {:>7.1} QPM  {:>8.2}  {:>7.1}%  {:>7.2}%  {:>5.1}%",
            policy.name(),
            outcome.totals.mean_throughput_qpm(minutes as f64),
            outcome.totals.effective_accuracy(),
            100.0 * outcome.totals.relative_quality(),
            100.0 * outcome.totals.slo_violation_ratio(),
            100.0 * outcome.mean_utilization,
        );
    }

    println!(
        "\nArgus keeps quality near the SD-XL ceiling while serving load\n\
         Clipper-HA cannot sustain, and without Clipper-HT's quality loss."
    );
}
