//! Capacity planning: sweep offered load against cluster size to find
//! where accuracy-scaling saturates and horizontal scaling becomes
//! necessary — the operational-boundary analysis of §6, built on the §5.3
//! stress methodology.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use argus::core::{BatchedModel, Policy, RunConfig};
use argus::models::{latency, GpuArch, ModelVariant, Strategy};
use argus::workload::steady;

fn main() {
    let base_capacity = 8.0 * latency::peak_throughput_per_min(ModelVariant::SdXl, GpuArch::A100);
    println!("8×A100 exact-serving capacity (all SD-XL, K=0): {base_capacity:.0} QPM\n");

    println!("Load sweep on 8 workers (10-minute steady segments):");
    println!(
        "{:>8}  {:>10}  {:>8}  {:>9}  {:>10}",
        "load", "throughput", "quality", "SLO-viol", "saturated?"
    );
    for qpm in [60.0, 100.0, 140.0, 180.0, 210.0, 240.0, 280.0] {
        let out = RunConfig::new(Policy::Argus, steady(qpm, 10))
            .with_seed(3)
            .run();
        println!(
            "{:>5.0} QPM  {:>7.1} QPM  {:>8.2}  {:>8.2}%  {:>10}",
            qpm,
            out.totals.mean_throughput_qpm(10.0),
            out.totals.effective_accuracy(),
            100.0 * out.totals.slo_violation_ratio(),
            if out.saturated_minutes > 2 {
                "YES"
            } else {
                "no"
            },
        );
    }

    println!("\nWorker sweep at a fixed 250 QPM offered load:");
    println!(
        "{:>8}  {:>10}  {:>8}  {:>9}  {:>10}",
        "workers", "throughput", "quality", "SLO-viol", "saturated?"
    );
    for workers in [6, 8, 10, 12, 16] {
        let out = RunConfig::new(Policy::Argus, steady(250.0, 10))
            .with_seed(3)
            .with_workers(workers)
            .run();
        println!(
            "{:>8}  {:>7.1} QPM  {:>8.2}  {:>8.2}%  {:>10}",
            workers,
            out.totals.mean_throughput_qpm(10.0),
            out.totals.effective_accuracy(),
            100.0 * out.totals.slo_violation_ratio(),
            if out.saturated_minutes > 2 {
                "YES"
            } else {
                "no"
            },
        );
    }

    println!(
        "\nThe saturation flag is the paper's §6 signal for horizontal\n\
         scaling: once every worker runs the deepest approximation, only\n\
         more GPUs can add throughput."
    );

    // The capacity model is pluggable (Eq. 1's peak(v) is an interface,
    // not a constant): planning with the Obs. 5 batching curve raises the
    // capacity the solver believes in, so the same fleet saturates later
    // and spends the headroom on higher-quality levels.
    println!("\nBatch-aware planning (Proteus, dispatch batching B=4) at 220 QPM:");
    println!(
        "{:>16}  {:>10}  {:>8}  {:>10}",
        "planner", "throughput", "quality", "saturated?"
    );
    for (name, aware) in [("batch-1 plan", false), ("batching-aware", true)] {
        let mut cfg = RunConfig::new(Policy::Proteus, steady(220.0, 10))
            .with_seed(3)
            .with_batching(4);
        if aware {
            cfg = cfg.with_capacity_model(BatchedModel);
        }
        let out = cfg.run();
        println!(
            "{:>16}  {:>7.1} QPM  {:>8.2}  {:>10}",
            name,
            out.totals.mean_throughput_qpm(10.0),
            out.totals.effective_accuracy(),
            if out.saturated_minutes > 2 {
                "YES"
            } else {
                "no"
            },
        );
    }

    // On mixed fleets the planning strategy is per-pool: AC's base model
    // is disproportionately slow on older silicon (Fig. 5), so pinning
    // the SM ladder there recovers the diurnal-peak SLO violations.
    println!("\nMixed fleet (4xA100 + 2xA10G + 2xV100) at 160 QPM:");
    println!(
        "{:>16}  {:>10}  {:>8}  {:>9}",
        "strategy map", "throughput", "quality", "SLO-viol"
    );
    for per_pool in [false, true] {
        let mut cfg = RunConfig::new(Policy::Argus, steady(160.0, 10))
            .with_heterogeneous_pools(vec![
                (GpuArch::A100, 4),
                (GpuArch::A10G, 2),
                (GpuArch::V100, 2),
            ])
            .with_seed(3);
        if per_pool {
            cfg = cfg
                .with_pool_strategy(GpuArch::V100, Strategy::Sm)
                .with_pool_strategy(GpuArch::A10G, Strategy::Sm);
        }
        let out = cfg.run();
        println!(
            "{:>16}  {:>7.1} QPM  {:>8.2}  {:>8.2}%",
            if per_pool {
                "SM on old pools"
            } else {
                "AC everywhere"
            },
            out.totals.mean_throughput_qpm(10.0),
            out.totals.effective_accuracy(),
            100.0 * out.totals.slo_violation_ratio(),
        );
    }
}
