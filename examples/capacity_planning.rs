//! Capacity planning: sweep offered load against cluster size to find
//! where accuracy-scaling saturates and horizontal scaling becomes
//! necessary — the operational-boundary analysis of §6, built on the §5.3
//! stress methodology.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use argus::core::{Policy, RunConfig};
use argus::models::{latency, GpuArch, ModelVariant};
use argus::workload::steady;

fn main() {
    let base_capacity = 8.0 * latency::peak_throughput_per_min(ModelVariant::SdXl, GpuArch::A100);
    println!("8×A100 exact-serving capacity (all SD-XL, K=0): {base_capacity:.0} QPM\n");

    println!("Load sweep on 8 workers (10-minute steady segments):");
    println!(
        "{:>8}  {:>10}  {:>8}  {:>9}  {:>10}",
        "load", "throughput", "quality", "SLO-viol", "saturated?"
    );
    for qpm in [60.0, 100.0, 140.0, 180.0, 210.0, 240.0, 280.0] {
        let out = RunConfig::new(Policy::Argus, steady(qpm, 10))
            .with_seed(3)
            .run();
        println!(
            "{:>5.0} QPM  {:>7.1} QPM  {:>8.2}  {:>8.2}%  {:>10}",
            qpm,
            out.totals.mean_throughput_qpm(10.0),
            out.totals.effective_accuracy(),
            100.0 * out.totals.slo_violation_ratio(),
            if out.saturated_minutes > 2 {
                "YES"
            } else {
                "no"
            },
        );
    }

    println!("\nWorker sweep at a fixed 250 QPM offered load:");
    println!(
        "{:>8}  {:>10}  {:>8}  {:>9}  {:>10}",
        "workers", "throughput", "quality", "SLO-viol", "saturated?"
    );
    for workers in [6, 8, 10, 12, 16] {
        let out = RunConfig::new(Policy::Argus, steady(250.0, 10))
            .with_seed(3)
            .with_workers(workers)
            .run();
        println!(
            "{:>8}  {:>7.1} QPM  {:>8.2}  {:>8.2}%  {:>10}",
            workers,
            out.totals.mean_throughput_qpm(10.0),
            out.totals.effective_accuracy(),
            100.0 * out.totals.slo_violation_ratio(),
            if out.saturated_minutes > 2 {
                "YES"
            } else {
                "no"
            },
        );
    }

    println!(
        "\nThe saturation flag is the paper's §6 signal for horizontal\n\
         scaling: once every worker runs the deepest approximation, only\n\
         more GPUs can add throughput."
    );
}
