//! Production-trace comparison: run all seven serving policies over the
//! jittery SysX-like trace and print a per-policy summary plus a
//! minute-resolution excerpt for Argus — the workflow behind Fig. 16(c).
//! A second section replays the trace under Argus with each at-scale
//! retrieval layout — exact flat scan, shared LSH index, and the sharded
//! cache plane — comparing headline metrics against the cache hit-rate
//! and retrieval-latency mean/p99.
//!
//! ```sh
//! cargo run --release --example production_trace
//! ```

use argus::core::{Policy, RunConfig};
use argus::workload::sysx_like;

fn main() {
    let minutes = 120;
    let trace = sysx_like(7, minutes);
    println!(
        "SysX-like production trace: {} minutes, {:.0}–{:.0} QPM\n",
        minutes,
        trace.trough(),
        trace.peak()
    );

    println!(
        "{:>12}  {:>10}  {:>8}  {:>9}  {:>8}  {:>7}",
        "system", "throughput", "quality", "SLO-viol", "loads", "switches"
    );
    let mut argus_minutes = None;
    for policy in Policy::ALL {
        let outcome = RunConfig::new(policy, trace.clone()).with_seed(7).run();
        println!(
            "{:>12}  {:>7.1} QPM  {:>8.2}  {:>8.2}%  {:>8}  {:>3}/{:<3}",
            policy.name(),
            outcome.totals.mean_throughput_qpm(minutes as f64),
            outcome.totals.effective_accuracy(),
            100.0 * outcome.totals.slo_violation_ratio(),
            outcome.totals.model_loads,
            outcome.switches.0,
            outcome.switches.1,
        );
        if policy == Policy::Argus {
            argus_minutes = Some(outcome.minutes);
        }
    }

    println!("\nArgus retrieval-plane comparison (same trace):");
    println!(
        "{:>16}  {:>10}  {:>8}  {:>8}  {:>10}  {:>9}",
        "retrieval path", "throughput", "quality", "hit-rate", "mean lat", "p99 lat"
    );
    let layouts: Vec<(&str, RunConfig)> = vec![
        ("flat scan", RunConfig::new(Policy::Argus, trace.clone())),
        (
            "shared lsh",
            RunConfig::new(Policy::Argus, trace.clone()).with_lsh_cache(),
        ),
        (
            "sharded 8x2",
            RunConfig::new(Policy::Argus, trace.clone()).with_sharded_cache(8, 2),
        ),
    ];
    for (name, cfg) in layouts {
        let out = cfg.with_seed(7).run();
        println!(
            "{:>16}  {:>7.1} QPM  {:>8.2}  {:>7.1}%  {:>7.1} ms  {:>6.1} ms",
            name,
            out.totals.mean_throughput_qpm(minutes as f64),
            out.totals.effective_accuracy(),
            100.0 * out.retrieval.hit_rate(),
            1000.0 * out.retrieval.mean_latency,
            1000.0 * out.retrieval.p99_latency,
        );
    }

    println!("\nArgus minute-by-minute excerpt (every 10th minute):");
    println!(
        "{:>6}  {:>8}  {:>9}  {:>8}  {:>6}",
        "minute", "offered", "completed", "quality", "util"
    );
    if let Some(minutes) = argus_minutes {
        for m in minutes.iter().step_by(10) {
            println!(
                "{:>6}  {:>8}  {:>9}  {:>8.2}  {:>5.1}%",
                m.minute,
                m.offered,
                m.completed,
                m.effective_accuracy(),
                100.0 * m.utilization,
            );
        }
    }
}
