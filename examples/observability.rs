//! Observability walkthrough: run a short diurnal trace with the §12
//! telemetry plane enabled, then tour everything it recorded — the
//! per-minute timeline, the job-lifecycle spans, the actor-stage
//! profiles — and export the deterministic JSONL event log plus a
//! Chrome trace-event file you can open in `chrome://tracing` or
//! Perfetto.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use argus::core::{Policy, RunConfig, SpanKind, TelemetryConfig};
use argus::workload::twitter_like;

fn main() {
    let minutes = 40;
    let jsonl_path = "target/observability.telemetry.jsonl";
    let trace_path = "target/observability.trace.json";

    // Telemetry is opt-in: without `with_telemetry` this run is
    // bit-identical to one built before the plane existed. `full()`
    // records every job's spans; `TelemetryConfig::sampled(64)` keeps
    // one job in 64 when a million-job trace makes full spans too big.
    let out = RunConfig::new(Policy::Argus, twitter_like(7, minutes))
        .with_seed(7)
        .with_telemetry(
            TelemetryConfig::full()
                .with_jsonl(jsonl_path)
                .with_chrome_trace(trace_path),
        )
        .run();
    println!(
        "run: {} offered, {} completed, {:.2}% SLO violations\n",
        out.totals.offered,
        out.totals.completed,
        100.0 * out.totals.slo_violation_ratio()
    );

    // ---- 1. The timeline: one registry snapshot per simulated minute.
    let tl = out.timeline.as_ref().expect("timeline enabled");
    println!(
        "timeline: {} tick samples, series = {} counters / {} gauges / {} histograms",
        tl.samples.len(),
        tl.counter_names.len(),
        tl.gauge_names.len(),
        tl.hist_names.len()
    );
    let arrivals = tl.counter("arrivals").expect("registered series");
    let backlog = tl.gauge("backlog").expect("registered series");
    println!("{:>8}  {:>10}  {:>9}", "minute", "arrivals", "backlog");
    for (i, s) in tl.samples.iter().enumerate().step_by(10) {
        println!("{:>8}  {:>10}  {:>9.0}", s.minute, arrivals[i], backlog[i]);
    }
    let e2e = tl.total_hist("e2e_latency_secs").expect("registered");
    println!(
        "e2e latency over the whole run: p50 ≤ {:.1}s, p99 ≤ {:.1}s ({} samples)\n",
        e2e.percentile(0.50).unwrap_or(0.0),
        e2e.percentile(0.99).unwrap_or(0.0),
        e2e.count()
    );

    // ---- 2. Lifecycle spans: one event per stage a job passed through.
    let spans = out.spans.as_ref().expect("spans enabled");
    println!(
        "spans: {} events recorded (sampling 1-in-{}, {} dropped)",
        spans.events.len(),
        spans.sample_every,
        spans.dropped
    );
    let job0: Vec<_> = spans.events.iter().filter(|e| e.job == 0).collect();
    println!("job 0's life:");
    for e in &job0 {
        println!(
            "  {:>8.3}s  {:<12} level={:?} pool={:?}",
            e.t_us as f64 / 1e6,
            e.kind.as_str(),
            e.level,
            e.pool
        );
    }
    let cache_hits = spans
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::CacheHit)
        .count();
    println!("cache hits among sampled jobs: {cache_hits}\n");

    // ---- 3. Actor-stage profiles: what each stage did all run.
    println!(
        "{:>12}  {:>10}  {:>8}  {:>9}  {:>8}  {:>6}",
        "stage", "processed", "batches", "replies", "sent", "hwm"
    );
    for p in &out.stage_profiles {
        println!(
            "{:>12}  {:>10}  {:>8}  {:>9}  {:>8}  {:>6}",
            p.stage,
            p.counters.processed,
            p.counters.batches,
            p.counters.replies,
            p.sent,
            p.mailbox_hwm
        );
    }

    // ---- 4. Exports: both files were written at teardown; the same
    // documents are available in-memory, byte-identical.
    assert_eq!(
        std::fs::read_to_string(jsonl_path).expect("export written"),
        out.telemetry_jsonl()
    );
    assert_eq!(
        std::fs::read_to_string(trace_path).expect("export written"),
        out.chrome_trace()
    );
    println!("\nexports:");
    println!("  {jsonl_path}  (schema-validated JSONL event log)");
    println!("  {trace_path}  (open in chrome://tracing or Perfetto)");
    let summary = argus::obs::validate_jsonl(&out.telemetry_jsonl()).expect("valid document");
    println!(
        "  validator: {} span lines, {} tick lines, {} stage lines",
        summary.spans, summary.ticks, summary.stages
    );
}
