//! Cascade walkthrough: the §13 query-aware serving plane on one
//! diurnal trace. Runs the Argus ladder baseline, the priced cascade
//! (first pass on the cheap rung, discriminator-gated escalation to
//! SD-XL, escalation-rate EWMA fed into Eq. 1), and the unpriced
//! ablation, then prints the side-by-side and the escalation ledger.
//!
//! ```sh
//! cargo run --release --example cascade
//! ```

use argus::core::{CascadeConfig, Policy, RunConfig, RunOutcome};
use argus::workload::twitter_like;

fn run(cascade: Option<CascadeConfig>) -> RunOutcome {
    // The s65 regime: the single-pass ladder clears this trace, while
    // the cascade's second passes saturate it at the diurnal peaks —
    // the load level where escalation pricing has headroom to matter.
    let trace = twitter_like(11, 30).normalize_to(45.0, 125.0);
    let mut cfg = RunConfig::new(Policy::Argus, trace).with_seed(11);
    if let Some(c) = cascade {
        cfg = cfg.with_cascade(c);
    }
    cfg.classifier_train_size = 800;
    cfg.run()
}

fn main() {
    // The cascade is opt-in: without `with_cascade` this run is
    // bit-identical to one built before the plane existed.
    let ladder = run(None);
    let priced = run(Some(CascadeConfig::new()));
    let unpriced = run(Some(CascadeConfig::new().with_escalation_pricing(false)));

    println!(
        "{:>20}  {:>9}  {:>8}  {:>10}",
        "plan", "completed", "quality", "viol ratio"
    );
    for (name, out) in [
        ("Argus ladder", &ladder),
        ("cascade (priced)", &priced),
        ("cascade (unpriced)", &unpriced),
    ] {
        println!(
            "{:>20}  {:>9}  {:>8.3}  {:>10.3}",
            name,
            out.totals.completed,
            out.totals.relative_quality(),
            out.totals.slo_violation_ratio()
        );
    }

    // ---- The escalation ledger: what the discriminator did, per
    // executed first-pass level (Eq. 3 spill can serve a first pass
    // away from the configured rung).
    let stats = priced.cascade.as_ref().expect("cascade enabled");
    println!(
        "\n{:>10}  {:>12}  {:>10}  {:>9}  {:>10}",
        "level", "first passes", "escalated", "accepted", "EWMA rate"
    );
    for (level, &n) in &stats.first_pass {
        println!(
            "{:>10}  {:>12}  {:>10}  {:>9}  {:>10.3}",
            level.to_string(),
            n,
            stats.escalated.get(level).copied().unwrap_or(0),
            stats.accepted.get(level).copied().unwrap_or(0),
            stats.escalation_rate.get(level).copied().unwrap_or(0.0)
        );
    }
    println!(
        "\n{} of {} first passes escalated, {} second passes completed; \
         the second pass bought {:+.3} relative quality per escalation",
        stats.escalated_total(),
        stats.first_pass_total(),
        stats.escalated_completed,
        stats.quality_delta
    );

    // ---- The pricing ablation: planning as if second passes were
    // free serves hotter and violates more; the `1 + rate` capacity
    // tax (DESIGN.md §13) provisions the headroom back.
    println!(
        "escalation pricing: {} violations priced vs {} unpriced",
        priced.totals.violations, unpriced.totals.violations
    );
}
