//! Fault tolerance: inject a 4-of-8 GPU failure and a cache-network
//! outage into an Argus run and watch the system absorb both — the §5.6 /
//! Fig. 20 scenarios — then ride a spot-pool preemption storm with an
//! autoscaled elastic fleet (DESIGN.md §11).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use argus::cachestore::NetworkRegime;
use argus::core::{preemption_events, AutoscalePolicy, FaultEvent, Policy, RunConfig};
use argus::models::GpuArch;
use argus::workload::{preemption_storm, steady, twitter_like};

fn main() {
    let minutes = 50;
    // Scenario A runs at a load half the cluster can absorb by deepening
    // approximation (the Fig. 20a "moderate load" case); scenario B uses a
    // hotter load where the switch matters most.
    let moderate = steady(85.0, minutes);
    let trace = steady(110.0, minutes);

    println!("Scenario A — GPU failure: workers 0–3 fail at minute 10, recover at minute 25\n");
    let out = RunConfig::new(Policy::Argus, moderate)
        .with_seed(11)
        .with_faults(vec![
            FaultEvent::WorkerFail {
                at_minute: 10.0,
                workers: vec![0, 1, 2, 3],
            },
            FaultEvent::WorkerRecover {
                at_minute: 25.0,
                workers: vec![0, 1, 2, 3],
            },
        ])
        .run();
    print_phases(
        &out.minutes,
        &[
            (0, 10, "healthy"),
            (10, 25, "4/8 failed"),
            (25, 50, "recovered"),
        ],
    );
    println!(
        "totals: {:.1} QPM served, {:.2}% SLO violations\n",
        out.totals.mean_throughput_qpm(minutes as f64),
        100.0 * out.totals.slo_violation_ratio()
    );

    println!("Scenario B — cache-network outage at minute 10, recovery at minute 25");
    println!("(Argus switches AC→SM and back; the no-switch variant suffers)\n");
    let events = vec![(10.0, NetworkRegime::Outage), (25.0, NetworkRegime::Normal)];
    let adaptive = RunConfig::new(Policy::Argus, trace.clone())
        .with_seed(11)
        .with_network_events(events.clone())
        .run();
    let frozen = RunConfig::new(Policy::Argus, trace)
        .with_seed(11)
        .with_network_events(events)
        .without_strategy_switch()
        .run();
    println!(
        "{:>22}  {:>10}  {:>9}  {:>16}",
        "variant", "throughput", "SLO-viol", "strategy switches"
    );
    for (name, out) in [
        ("adaptive (AC↔SM)", &adaptive),
        ("no-switch (frozen)", &frozen),
    ] {
        println!(
            "{:>22}  {:>7.1} QPM  {:>8.2}%  {:>7} → {:<7}",
            name,
            out.totals.mean_throughput_qpm(minutes as f64),
            100.0 * out.totals.slo_violation_ratio(),
            out.switches.0,
            out.switches.1,
        );
    }

    println!("\nScenario C — elastic fleet: a spot storm under an autoscaler");
    println!("(8 on-demand A100s + 4 spot A10Gs; 3 spot instances reclaimed");
    println!(" at minute 12 with a 30 s warning; surge traffic forces scale-out)\n");
    let surge = twitter_like(11, 40).normalize_to(60.0, 260.0);
    let storm = preemption_storm(11, 8, 4, 0.75, 12.0);
    let out = RunConfig::new(Policy::Argus, surge)
        .with_seed(11)
        .with_autoscaler(AutoscalePolicy::default().with_bounds(GpuArch::A100, 8, 12))
        .with_spot_pool(GpuArch::A10G, 4, 0.6)
        .with_faults(preemption_events(&storm, 30.0))
        .run();
    println!(
        "fleet: peak {} workers, {} scale-outs (+{}), {} scale-ins (-{})",
        out.fleet.peak_workers,
        out.fleet.scale_out_events,
        out.fleet.workers_added,
        out.fleet.scale_in_events,
        out.fleet.workers_retired,
    );
    println!(
        "storm: {} preemptions ridden (drained clean), {} killed an in-flight pass",
        out.fleet.preemptions_ridden, out.fleet.preemptions_lost,
    );
    println!(
        "cost:  ${:.2} total (${:.2} on-demand + ${:.2} spot) — ${:.3} per 1k images",
        out.cost.total_dollars,
        out.cost.on_demand_dollars,
        out.cost.spot_dollars,
        out.cost.dollars_per_1k_images,
    );
    for &(gpu, od, spot) in &out.cost.gpu_minutes {
        println!("       {gpu:?}: {od:.0} on-demand + {spot:.0} spot GPU-minutes");
    }
}

fn print_phases(minutes: &[argus::core::MinuteRecord], phases: &[(u64, u64, &str)]) {
    println!(
        "{:>12}  {:>9}  {:>9}  {:>8}  {:>9}",
        "phase", "offered", "completed", "quality", "SLO-viol"
    );
    for &(from, to, name) in phases {
        let window: Vec<_> = minutes
            .iter()
            .filter(|m| m.minute >= from && m.minute < to)
            .collect();
        let offered: u64 = window.iter().map(|m| m.offered).sum();
        let completed: u64 = window.iter().map(|m| m.completed).sum();
        let violations: u64 = window.iter().map(|m| m.violations).sum();
        let in_slo: u64 = window.iter().map(|m| m.in_slo).sum();
        let qsum: f64 = window.iter().map(|m| m.quality_sum).sum();
        println!(
            "{:>12}  {:>9}  {:>9}  {:>8.2}  {:>8.2}%",
            name,
            offered,
            completed,
            if in_slo > 0 {
                qsum / in_slo as f64
            } else {
                0.0
            },
            if offered > 0 {
                100.0 * violations as f64 / offered as f64
            } else {
                0.0
            },
        );
    }
}
