//! Recall parity of the shared LSH retrieval path (§4.7).
//!
//! The shared-VDB deployment can route cache lookups through
//! `SharedIndex<LshIndex>` instead of the exact flat scan
//! (`RunConfig::with_lsh_cache`). Multi-probe LSH trades a sliver of
//! recall for sub-linear scan cost; these tests pin that the trade stays
//! a sliver on the quickstart trace — both at the index level (agreement
//! with flat ground truth) and end-to-end (headline metrics move only
//! marginally).

use argus::core::{Policy, RunConfig, RunOutcome};
use argus::embed::embed;
use argus::prompts::PromptGenerator;
use argus::vdb::{FlatIndex, LshIndex, SharedIndex};
use argus::workload::twitter_like;

/// The quickstart trace (`examples/quickstart.rs`), truncated so the
/// debug-mode suite stays quick.
fn quickstart_trace() -> argus::workload::Trace {
    twitter_like(42, 20)
}

fn run(lsh: bool) -> RunOutcome {
    let mut cfg = RunConfig::new(Policy::Argus, quickstart_trace()).with_seed(42);
    cfg.classifier_train_size = 1500;
    if lsh {
        cfg = cfg.with_lsh_cache();
    }
    cfg.run()
}

#[test]
fn index_level_recall_parity_on_quickstart_prompts() {
    // Index the same prompt stream the quickstart workload draws from and
    // compare nearest-neighbour answers against flat ground truth.
    let mut flat = FlatIndex::new();
    let shared: SharedIndex<usize, LshIndex<usize>> =
        SharedIndex::from_index(LshIndex::with_capacity_limit(8, 42, 4096));
    let corpus = PromptGenerator::new(42).generate_batch(1000);
    for (i, p) in corpus.iter().enumerate() {
        let e = embed(&p.text);
        flat.insert(e.clone(), i);
        shared.insert(e, i);
    }
    let queries = PromptGenerator::new(43).generate_batch(200);
    let mut agree = 0;
    for q in &queries {
        let e = embed(&q.text);
        let truth = flat.nearest(&e).expect("non-empty");
        if let Some(hit) = shared.nearest(&e) {
            if hit.payload == truth.payload || hit.similarity >= truth.similarity - 0.05 {
                agree += 1;
            }
        }
    }
    assert!(agree >= 130, "recall parity {agree}/200");
}

#[test]
fn end_to_end_metrics_parity_on_quickstart_trace() {
    let flat = run(false);
    let lsh = run(true);

    // Same offered load (the workload is seed-driven, not index-driven).
    assert_eq!(flat.totals.offered, lsh.totals.offered);
    // Throughput parity within 3%.
    let ratio = lsh.totals.completed as f64 / flat.totals.completed as f64;
    assert!((ratio - 1.0).abs() < 0.03, "completed ratio {ratio:.4}");
    // Quality parity within 0.3 PickScore points.
    let dq = (lsh.totals.effective_accuracy() - flat.totals.effective_accuracy()).abs();
    assert!(dq < 0.3, "quality gap {dq:.3}");
    // The LSH path must actually retrieve (not silently fall back to full
    // generation).
    let retrievals = |o: &RunOutcome| o.minutes.iter().map(|m| m.retrievals).sum::<u64>();
    let (rf, rl) = (retrievals(&flat), retrievals(&lsh));
    assert!(rl > 100, "lsh retrievals {rl}");
    let rr = rl as f64 / rf as f64;
    assert!((rr - 1.0).abs() < 0.1, "retrieval ratio {rr:.4}");
}
