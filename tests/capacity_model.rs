//! The `CapacityModel` refactor's compatibility and correctness contract:
//!
//! * `Batch1Model` (the default) is **bit-identical to the pre-refactor
//!   solver constants** — pinned two ways: whole-run golden fingerprints
//!   captured on the pre-refactor tree for all seven policies (plus a
//!   heterogeneous fleet), and profile/solve parity against the legacy
//!   `peak = 60 / (t + overhead)` construction at W ∈ {8, 64, 128};
//! * per-pool-strategy and demand-re-split runs are bit-deterministic,
//!   and both features actually move their target metric on the scenarios
//!   they were built for (Fig. 5/fig16 mixed-fleet SLO recovery; fault-
//!   driven intra-tick saturation);
//! * `BatchedModel` capacity is monotone non-decreasing in the batch
//!   bound and never plans below batch-1 feasibility (property-tested);
//! * the satellite telemetry (per-pool stats, replica-write hop counters)
//!   is internally consistent.

use argus::core::{
    AllocationProblem, Batch1Model, BatchedModel, CapacityCtx, CapacityModel, FaultEvent,
    LevelProfile, Policy, RunConfig, RunOutcome,
};
use argus::models::{ApproxLevel, GpuArch, Strategy};
use argus::workload::{steady, twitter_like, Trace};
use proptest::prelude::*;

fn cfg(policy: Policy, trace: Trace, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(policy, trace).with_seed(seed);
    c.classifier_train_size = 800;
    c
}

/// Whole-run fingerprint: every counter plus the bit patterns of the
/// float aggregates, so a single changed RNG draw or reordered float op
/// fails loudly.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    offered: u64,
    completed: u64,
    violations: u64,
    in_slo: u64,
    model_loads: u64,
    quality_bits: u64,
    relative_bits: u64,
    makespan_bits: u64,
    switches: (u64, u64),
}

fn fingerprint(out: &RunOutcome) -> Golden {
    Golden {
        offered: out.totals.offered,
        completed: out.totals.completed,
        violations: out.totals.violations,
        in_slo: out.totals.in_slo,
        model_loads: out.totals.model_loads,
        quality_bits: out.totals.quality_sum.to_bits(),
        relative_bits: out.totals.relative_quality_sum.to_bits(),
        makespan_bits: out.makespan_secs.to_bits(),
        switches: out.switches,
    }
}

/// Captured on the pre-refactor tree (PR 4 head) with
/// `twitter_like(11, 6)`, seed 11, `classifier_train_size = 800`.
fn pre_refactor_goldens() -> Vec<(&'static str, Golden)> {
    vec![
        (
            "Argus",
            Golden {
                offered: 609,
                completed: 609,
                violations: 234,
                in_slo: 375,
                model_loads: 8,
                quality_bits: 0x40bd510e9b2f72d6,
                relative_bits: 0x4076533a7c3778ed,
                makespan_bits: 0x4076fde2ad3e920c,
                switches: (0, 0),
            },
        ),
        (
            "PAC",
            Golden {
                offered: 609,
                completed: 609,
                violations: 228,
                in_slo: 381,
                model_loads: 8,
                quality_bits: 0x40bdd063cb76e8fe,
                relative_bits: 0x4076b31e87f961ab,
                makespan_bits: 0x407700f0e1b4bb5e,
                switches: (0, 0),
            },
        ),
        (
            "Proteus",
            Golden {
                offered: 609,
                completed: 609,
                violations: 45,
                in_slo: 564,
                model_loads: 19,
                quality_bits: 0x40c518b5c662950b,
                relative_bits: 0x40800d336c3ac72e,
                makespan_bits: 0x4076d6d01f31f46f,
                switches: (0, 0),
            },
        ),
        (
            "Sommelier",
            Golden {
                offered: 609,
                completed: 609,
                violations: 308,
                in_slo: 301,
                model_loads: 24,
                quality_bits: 0x40b8c1acc005c874,
                relative_bits: 0x4072d8622468d0eb,
                makespan_bits: 0x407a01f80dc33722,
                switches: (0, 0),
            },
        ),
        (
            "NIRVANA",
            Golden {
                offered: 609,
                completed: 609,
                violations: 151,
                in_slo: 458,
                model_loads: 8,
                quality_bits: 0x40c15f3bacc10f1b,
                relative_bits: 0x407a7199fe81a855,
                makespan_bits: 0x4077bc5b8fde2ef5,
                switches: (0, 0),
            },
        ),
        (
            "Clipper-HA",
            Golden {
                offered: 609,
                completed: 609,
                violations: 308,
                in_slo: 301,
                model_loads: 8,
                quality_bits: 0x40b8c1acc005c874,
                relative_bits: 0x4072d8622468d0eb,
                makespan_bits: 0x407a8e8827b6fe2e,
                switches: (0, 0),
            },
        ),
        (
            "Clipper-HT",
            Golden {
                offered: 609,
                completed: 609,
                violations: 0,
                in_slo: 609,
                model_loads: 8,
                quality_bits: 0x40c4573f0f8062bb,
                relative_bits: 0x407eefa0f45bd5a6,
                makespan_bits: 0x40769f86d938151a,
                switches: (0, 0),
            },
        ),
    ]
}

#[test]
fn batch1_default_runs_match_pre_refactor_goldens() {
    let trace = twitter_like(11, 6);
    for (policy, golden) in Policy::ALL.into_iter().zip(pre_refactor_goldens()) {
        assert_eq!(policy.name(), golden.0);
        let out = cfg(policy, trace.clone(), 11).run();
        assert_eq!(fingerprint(&out), golden.1, "{policy} diverged");
    }
}

#[test]
fn heterogeneous_batch1_run_matches_pre_refactor_golden() {
    let out = cfg(Policy::Argus, twitter_like(11, 6), 11)
        .with_heterogeneous_pools(vec![
            (GpuArch::A100, 4),
            (GpuArch::A10G, 2),
            (GpuArch::V100, 2),
        ])
        .run();
    let golden = Golden {
        offered: 609,
        completed: 609,
        violations: 195,
        in_slo: 414,
        model_loads: 8,
        quality_bits: 0x40bf61fbeb47f23b,
        relative_bits: 0x4077e6504ff74b53,
        makespan_bits: 0x4079862f901083dc,
        switches: (0, 0),
    };
    assert_eq!(fingerprint(&out), golden);
}

#[test]
fn explicit_batch1_model_is_the_default() {
    let trace = twitter_like(11, 6);
    for policy in [Policy::Argus, Policy::Proteus, Policy::ClipperHt] {
        let default = cfg(policy, trace.clone(), 11).run();
        let explicit = cfg(policy, trace.clone(), 11)
            .with_capacity_model(Batch1Model)
            .run();
        assert_eq!(
            fingerprint(&default),
            fingerprint(&explicit),
            "{policy}: explicit Batch1Model diverged from the default"
        );
    }
}

/// The pre-refactor profile construction, verbatim: `peak = 60 / (t +
/// retrieval overhead for AC)`.
fn legacy_profiles(ladder: &[ApproxLevel], gpu: GpuArch, overhead: f64) -> Vec<LevelProfile> {
    ladder
        .iter()
        .map(|&level| {
            let mut secs = level.compute_secs(gpu);
            if level.strategy() == Strategy::Ac {
                secs += overhead.max(0.0);
            }
            LevelProfile {
                level,
                quality: level.profiled_quality(),
                peak_qpm: 60.0 / secs,
            }
        })
        .collect()
}

#[test]
fn batch1_profiles_and_solves_match_the_legacy_solver_at_scale() {
    for strategy in [Strategy::Ac, Strategy::Sm] {
        let ladder = ApproxLevel::ladder(strategy);
        for gpu in [GpuArch::A100, GpuArch::V100] {
            let overhead = if strategy == Strategy::Ac { 0.02 } else { 0.0 };
            for workers in [8usize, 64, 128] {
                for demand in [0.0, 120.0, 900.0, 2600.0] {
                    let legacy = AllocationProblem {
                        levels: legacy_profiles(&ladder, gpu, overhead),
                        workers,
                        demand_qpm: demand,
                    };
                    let modelled = AllocationProblem::from_capacity_model(
                        &Batch1Model,
                        &ladder,
                        gpu,
                        &CapacityCtx::batch1(overhead),
                        workers,
                        demand,
                    );
                    assert_eq!(
                        legacy, modelled,
                        "{strategy} W={workers} {gpu:?}: profiles diverged"
                    );
                    // Same problem, bit for bit, therefore the same
                    // allocation bit for bit — still worth pinning
                    // through the solver at every scale tier (exact
                    // enumeration at 8, branch-and-bound at 64/128).
                    assert_eq!(
                        legacy.solve(),
                        modelled.solve(),
                        "{strategy} W={workers} demand={demand}: allocations diverged"
                    );
                }
            }
        }
    }
}

fn mixed_fleet() -> Vec<(GpuArch, usize)> {
    vec![(GpuArch::A100, 4), (GpuArch::A10G, 2), (GpuArch::V100, 2)]
}

fn per_pool_cfg(seed: u64) -> RunConfig {
    cfg(
        Policy::Argus,
        twitter_like(7, 30).normalize_to(60.0, 200.0),
        seed,
    )
    .with_heterogeneous_pools(mixed_fleet())
    .with_pool_strategy(GpuArch::V100, Strategy::Sm)
    .with_pool_strategy(GpuArch::A10G, Strategy::Sm)
}

#[test]
fn per_pool_strategy_runs_are_bit_deterministic() {
    let a = per_pool_cfg(7).run();
    let b = per_pool_cfg(7).run();
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.minutes, b.minutes);
    assert_eq!(a.level_completions, b.level_completions);
    assert_eq!(a.quality_samples, b.quality_samples);
    assert_eq!(a.pools, b.pools);
}

#[test]
fn per_pool_strategies_serve_both_ladders_and_cut_violations() {
    // Fig. 5 / fig16: AC's base model is disproportionately slow on
    // V100/A10G, so AC-everywhere pays SLO violations at diurnal peaks
    // that SM-pinning the old pools recovers.
    let ac_everywhere = cfg(
        Policy::Argus,
        twitter_like(7, 30).normalize_to(60.0, 200.0),
        7,
    )
    .with_heterogeneous_pools(mixed_fleet())
    .run();
    let per_pool = per_pool_cfg(7).run();
    assert_eq!(
        ac_everywhere.totals.completed, per_pool.totals.completed,
        "both configurations must serve the full trace"
    );
    assert!(
        per_pool.totals.slo_violation_ratio() < 0.5 * ac_everywhere.totals.slo_violation_ratio(),
        "per-pool strategies should at least halve peak violations: {:.3} vs {:.3}",
        per_pool.totals.slo_violation_ratio(),
        ac_everywhere.totals.slo_violation_ratio()
    );
    // Both strategies actually executed: AC levels on the A100 pool, SM
    // variants on the pinned pools.
    let ac_jobs: u64 = per_pool
        .level_completions
        .iter()
        .filter(|(l, _)| l.strategy() == Strategy::Ac)
        .map(|&(_, c)| c)
        .sum();
    let sm_jobs: u64 = per_pool
        .level_completions
        .iter()
        .filter(|(l, _)| l.strategy() == Strategy::Sm)
        .map(|&(_, c)| c)
        .sum();
    assert!(ac_jobs > 500, "AC pool starved: {ac_jobs}");
    assert!(sm_jobs > 500, "pinned SM pools starved: {sm_jobs}");
}

fn resplit_cfg(seed: u64, resplit: bool) -> RunConfig {
    let mut c = cfg(Policy::Argus, steady(100.0, 16), seed)
        .with_heterogeneous_pools(mixed_fleet())
        .with_faults(vec![
            FaultEvent::WorkerFail {
                at_minute: 5.2,
                workers: vec![0, 1, 2],
            },
            FaultEvent::WorkerRecover {
                at_minute: 9.2,
                workers: vec![0, 1, 2],
            },
        ]);
    if resplit {
        c = c.with_demand_resplit();
    }
    c
}

#[test]
fn demand_resplit_runs_are_bit_deterministic() {
    let a = resplit_cfg(3, true).run();
    let b = resplit_cfg(3, true).run();
    assert!(a.demand_resplits > 0, "re-split never fired");
    assert_eq!(a.demand_resplits, b.demand_resplits);
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.minutes, b.minutes);
    assert_eq!(a.level_completions, b.level_completions);
    assert_eq!(a.quality_samples, b.quality_samples);
    assert_eq!(a.pools, b.pools);
}

#[test]
fn demand_resplit_recovers_mid_minute_fault_violations() {
    // A fault 12 s into minute 5 drowns the A100 pool intra-tick; without
    // re-splitting the other pools keep serving their stale (now too
    // slow) plans until the next tick and violations pile up.
    let plain = resplit_cfg(3, false).run();
    let resplit = resplit_cfg(3, true).run();
    assert_eq!(plain.demand_resplits, 0);
    assert_eq!(plain.totals.completed, resplit.totals.completed);
    assert!(
        resplit.totals.slo_violation_ratio() < 0.75 * plain.totals.slo_violation_ratio(),
        "re-split should recover fault-window violations: {:.3} vs {:.3}",
        resplit.totals.slo_violation_ratio(),
        plain.totals.slo_violation_ratio()
    );
}

#[test]
fn pool_strategy_override_is_inert_for_non_solver_policies() {
    // Per-worker and static policies never reallocate, so a pool pin
    // must not perturb routing (no PoolView is ever built for them).
    for policy in [Policy::ClipperHa, Policy::Nirvana, Policy::Sommelier] {
        let base = cfg(policy, steady(90.0, 6), 4)
            .with_heterogeneous_pools(vec![(GpuArch::A100, 4), (GpuArch::V100, 2)])
            .run();
        let pinned = cfg(policy, steady(90.0, 6), 4)
            .with_heterogeneous_pools(vec![(GpuArch::A100, 4), (GpuArch::V100, 2)])
            .with_pool_strategy(GpuArch::V100, Strategy::Sm)
            .run();
        assert_eq!(base.totals, pinned.totals, "{policy}: override not inert");
        assert_eq!(base.level_completions, pinned.level_completions, "{policy}");
    }
}

#[test]
fn pool_stats_are_consistent_with_run_totals() {
    let out = per_pool_cfg(7).run();
    assert_eq!(out.pools.len(), 3);
    let pool_completions: u64 = out.pools.iter().map(|p| p.completions).sum();
    assert_eq!(pool_completions, out.totals.completed);
    let pool_violations: u64 = out.pools.iter().map(|p| p.violations).sum();
    // Lost jobs count in the run totals but belong to no pool.
    assert!(pool_violations <= out.totals.violations);
    for p in &out.pools {
        assert!(p.completions > 0, "{:?} pool idle", p.gpu);
        assert!(p.mean_allocated_workers > 0.0);
        assert!(p.mean_allocated_workers <= p.workers as f64 + 1e-9);
        assert!(p.violation_ratio() <= 1.0);
    }
}

#[test]
fn replica_write_hops_follow_the_replication_factor() {
    let sharded = cfg(Policy::Argus, twitter_like(5, 6), 5)
        .with_sharded_cache(4, 2)
        .run();
    let r = &sharded.retrieval;
    assert!(r.inserts > 0);
    // No faults: every insert writes all R = 2 replicas…
    assert_eq!(r.replica_writes, 2 * r.inserts);
    // …one copy may land on the producing worker (free), the rest hop.
    assert!(r.remote_write_hops < r.replica_writes);
    assert!(r.remote_write_hops >= r.inserts);

    // The monolithic index is off-cluster: every insert is one remote
    // write, and (1, 1) sharding is the same external deployment.
    let mono = cfg(Policy::Argus, twitter_like(5, 6), 5).run();
    assert_eq!(mono.retrieval.replica_writes, mono.retrieval.inserts);
    assert_eq!(mono.retrieval.remote_write_hops, mono.retrieval.inserts);
    let external = cfg(Policy::Argus, twitter_like(5, 6), 5)
        .with_sharded_cache(1, 1)
        .run();
    assert_eq!(
        external.retrieval.remote_write_hops,
        external.retrieval.inserts
    );
}

fn level_at(strategy: Strategy, idx: usize) -> ApproxLevel {
    ApproxLevel::ladder(strategy)[idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `BatchedModel` peak capacity is monotone non-decreasing in the
    /// batch bound, for every rung, architecture and SLO.
    #[test]
    fn prop_batched_capacity_monotone_in_batch_bound(
        strategy_ac in 0usize..2,
        idx in 0usize..6,
        gpu_idx in 0usize..3,
        slo in 5.0f64..40.0,
        overhead in 0.0f64..0.2,
        b_lo in 1u32..16,
        b_hi in 1u32..16,
    ) {
        let strategy = if strategy_ac == 0 { Strategy::Ac } else { Strategy::Sm };
        let level = level_at(strategy, idx);
        let gpu = [GpuArch::A100, GpuArch::A10G, GpuArch::V100][gpu_idx];
        let (lo, hi) = (b_lo.min(b_hi), b_lo.max(b_hi));
        let ctx = |b| CapacityCtx { max_batch: b, slo_secs: slo, retrieval_overhead_secs: overhead, escalation: None };
        let p_lo = BatchedModel.peak_qpm(level, gpu, &ctx(lo));
        let p_hi = BatchedModel.peak_qpm(level, gpu, &ctx(hi));
        prop_assert!(p_lo.is_finite() && p_lo > 0.0);
        prop_assert!(p_hi + 1e-9 >= p_lo, "{level} on {gpu:?}: B {lo}→{hi} lost capacity");
        // Never below batch-1 feasibility.
        let p1 = Batch1Model.peak_qpm(level, gpu, &ctx(1));
        prop_assert!(p_lo + 1e-9 >= p1, "{level}: batched peak below batch-1");
    }

    /// A batching-aware problem never plans below batch-1 feasibility:
    /// its capacity and served load dominate the batch-1 problem's.
    #[test]
    fn prop_batched_problem_dominates_batch1(
        workers in 1usize..24,
        demand in 0.0f64..600.0,
        max_batch in 1u32..12,
        slo in 8.0f64..30.0,
    ) {
        let ladder = ApproxLevel::ladder(Strategy::Sm);
        let ctx = CapacityCtx { max_batch, slo_secs: slo, retrieval_overhead_secs: 0.0, escalation: None };
        let b1 = AllocationProblem::from_capacity_model(
            &Batch1Model, &ladder, GpuArch::A100, &ctx, workers, demand);
        let batched = AllocationProblem::from_capacity_model(
            &BatchedModel, &ladder, GpuArch::A100, &ctx, workers, demand);
        prop_assert!(batched.max_capacity_qpm() + 1e-9 >= b1.max_capacity_qpm());
        let served_b1 = b1.solve().served_qpm;
        let served_batched = batched.solve().served_qpm;
        prop_assert!(served_batched + 1e-6 >= served_b1,
            "batched plan served less: {served_batched} < {served_b1}");
    }
}
