//! Cross-crate consistency of the substrates: the numbers one crate
//! publishes must be the numbers its consumers assume.

use argus::embed::{cosine, embed};
use argus::models::{latency, AcLevel, ApproxLevel, GpuArch, ModelVariant, Strategy};
use argus::prompts::PromptGenerator;
use argus::quality::{QualityOracle, OPTIMAL_QUALITY_THETA};
use argus::vdb::FlatIndex;

#[test]
fn solver_profiles_match_model_catalog() {
    use argus::core::AllocationProblem;
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    let p = AllocationProblem::from_ladder(&ladder, GpuArch::A100, 0.0, 8, 100.0);
    for (lp, lvl) in p.levels.iter().zip(&ladder) {
        assert_eq!(lp.quality, lvl.profiled_quality());
        assert!((lp.peak_qpm - lvl.peak_throughput_per_min(GpuArch::A100)).abs() < 1e-9);
    }
}

#[test]
fn oracle_population_means_track_solver_qualities() {
    // The solver plans with q_v; the oracle must deliver those averages,
    // or the plan systematically over/under-promises.
    let oracle = QualityOracle::new(31);
    let prompts = PromptGenerator::new(31).generate_batch(8000);
    for strategy in [Strategy::Ac, Strategy::Sm] {
        for lvl in ApproxLevel::ladder(strategy) {
            let mean: f64 =
                prompts.iter().map(|p| oracle.score(p, lvl)).sum::<f64>() / prompts.len() as f64;
            assert!(
                (mean - lvl.profiled_quality()).abs() < 0.5,
                "{lvl}: oracle {mean:.2} vs profiled {:.2}",
                lvl.profiled_quality()
            );
        }
    }
}

#[test]
fn embeddings_round_trip_through_the_vdb() {
    let mut index = FlatIndex::new();
    let prompts = PromptGenerator::new(32).generate_batch(100);
    for (i, p) in prompts.iter().enumerate() {
        index.insert(embed(&p.text), i);
    }
    for (i, p) in prompts.iter().enumerate().take(20) {
        let hit = index.nearest(&embed(&p.text)).expect("non-empty");
        assert_eq!(hit.payload, i, "self-lookup failed for {:?}", p.text);
        assert!(hit.similarity > 0.999);
    }
}

#[test]
fn similar_prompts_help_ac_quality_through_the_whole_path() {
    // embedding similarity → oracle similarity modulation, end to end.
    let oracle = QualityOracle::new(33);
    let mut generator = PromptGenerator::new(33);
    let p = generator.generate();
    let k20 = ApproxLevel::Ac(AcLevel(20));
    let exact_sim = cosine(&embed(&p.text), &embed(&p.text)) as f64;
    let close = oracle.score_with_similarity(&p, k20, exact_sim);
    let far = oracle.score_with_similarity(&p, k20, 0.2);
    assert!(close >= far);
}

#[test]
fn theta_rule_matches_paper_definition() {
    // §3: optimal quality = within 0.9 of the best score.
    assert_eq!(OPTIMAL_QUALITY_THETA, 0.9);
    let oracle = QualityOracle::new(34);
    let ladder = ApproxLevel::ladder(Strategy::Sm);
    for p in PromptGenerator::new(34).generate_batch(300) {
        let idx = oracle.optimal_level(&p, &ladder);
        let scores = oracle.scores(&p, &ladder);
        let best = scores.iter().cloned().fold(f64::MIN, f64::max);
        assert!(scores[idx] >= 0.9 * best);
    }
}

#[test]
fn cluster_capacity_constants_are_consistent() {
    // The Fig. 1 / Fig. 17 narratives depend on these two capacities.
    let exact = 8.0 * latency::peak_throughput_per_min(ModelVariant::SdXl, GpuArch::A100);
    let deepest = 8.0 * AcLevel(25).peak_throughput_per_min(GpuArch::A100);
    assert!((exact - 114.3).abs() < 1.0, "exact {exact}");
    assert!(deepest > 210.0 && deepest < 230.0, "deepest {deepest}");
    assert!(deepest / exact > 1.8, "approximation headroom ratio");
}

#[test]
fn loading_times_explain_the_ac_preference() {
    // Obs. 4's arithmetic: an SM switch costs ~an image-worth of time per
    // queued request at minimum; an AC level change costs nothing.
    use argus::models::latency::Loader;
    let load = latency::load_secs(ModelVariant::Sd15, Loader::Accelerate);
    let image = latency::inference_secs(ModelVariant::Sd15, GpuArch::A100);
    assert!(load > image, "load {load} vs image {image}");
    let xl = ApproxLevel::Sm(ModelVariant::SdXl);
    for k in [0u32, 5, 10, 15, 20, 25] {
        assert!(!xl.requires_model_switch(ApproxLevel::Ac(AcLevel(k))));
    }
}
