//! Cross-crate integration: the full serving system under every policy.

use argus::core::{Policy, RunConfig};
use argus::workload::{bursty, steady, twitter_like};

/// A short config with a reduced offline-training pool so the tests stay
/// fast in debug builds.
fn cfg(policy: Policy, trace: argus::workload::Trace, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(policy, trace).with_seed(seed);
    c.classifier_train_size = 1500;
    c
}

#[test]
fn argus_beats_prompt_agnostic_baselines_on_quality_under_load() {
    let trace = steady(150.0, 15);
    let argus = cfg(Policy::Argus, trace.clone(), 2).run();
    let pac = cfg(Policy::Pac, trace.clone(), 2).run();
    let proteus = cfg(Policy::Proteus, trace, 2).run();
    assert!(
        argus.totals.effective_accuracy() > pac.totals.effective_accuracy(),
        "argus {} vs pac {}",
        argus.totals.effective_accuracy(),
        pac.totals.effective_accuracy()
    );
    assert!(
        argus.totals.effective_accuracy() > proteus.totals.effective_accuracy(),
        "argus {} vs proteus {}",
        argus.totals.effective_accuracy(),
        proteus.totals.effective_accuracy()
    );
}

#[test]
fn argus_has_far_fewer_violations_than_nirvana_under_load() {
    // §5.2: NIRVANA "cannot adapt to an increase in workload" — it keeps
    // serving similarity-driven K while queues build.
    let trace = bursty(3, 30, 80.0, 185.0);
    let argus = cfg(Policy::Argus, trace.clone(), 3).run();
    let nirvana = cfg(Policy::Nirvana, trace, 3).run();
    assert!(
        nirvana.totals.slo_violation_ratio() > 2.0 * argus.totals.slo_violation_ratio(),
        "argus {:.3} vs nirvana {:.3}",
        argus.totals.slo_violation_ratio(),
        nirvana.totals.slo_violation_ratio()
    );
}

#[test]
fn clipper_variants_bracket_the_quality_throughput_tradeoff() {
    let trace = steady(150.0, 12);
    let ha = cfg(Policy::ClipperHa, trace.clone(), 4).run();
    let ht = cfg(Policy::ClipperHt, trace.clone(), 4).run();
    let argus = cfg(Policy::Argus, trace, 4).run();
    // HA: best quality, massive violations; HT: no violations, worst
    // quality; Argus: in between on quality, near HT on violations.
    assert!(ha.totals.effective_accuracy() > argus.totals.effective_accuracy());
    assert!(argus.totals.effective_accuracy() > ht.totals.effective_accuracy());
    assert!(ha.totals.slo_violation_ratio() > 0.2);
    assert!(ht.totals.slo_violation_ratio() < 0.05);
    assert!(argus.totals.slo_violation_ratio() < 0.12);
}

#[test]
fn proteus_pays_model_switching_argus_does_not() {
    // §5.7: Proteus switches models constantly on varying load; Argus'
    // AC ladder shares SD-XL weights so its loads stay at the cold-start
    // floor (8 = one per worker).
    let trace = twitter_like(5, 40);
    let argus = cfg(Policy::Argus, trace.clone(), 5).run();
    let proteus = cfg(Policy::Proteus, trace, 5).run();
    assert_eq!(
        argus.totals.model_loads, 8,
        "argus loads {}",
        argus.totals.model_loads
    );
    assert!(
        proteus.totals.model_loads > 3 * argus.totals.model_loads,
        "proteus loads {}",
        proteus.totals.model_loads
    );
}

#[test]
fn outcomes_are_bitwise_deterministic_across_full_stack() {
    let trace = twitter_like(6, 12);
    let a = cfg(Policy::Argus, trace.clone(), 6).run();
    let b = cfg(Policy::Argus, trace, 6).run();
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.level_completions, b.level_completions);
    assert_eq!(a.quality_samples, b.quality_samples);
    assert_eq!(a.classifier_accuracy, b.classifier_accuracy);
}

#[test]
fn offered_load_is_conserved() {
    // Every offered query either completes or is accounted as lost
    // (violation without completion); nothing vanishes.
    for policy in [Policy::Argus, Policy::Sommelier, Policy::Nirvana] {
        let out = cfg(policy, steady(100.0, 10), 7).run();
        assert!(out.totals.completed <= out.totals.offered);
        let per_minute_offered: u64 = out.minutes.iter().map(|m| m.offered).sum();
        assert_eq!(per_minute_offered, out.totals.offered, "{policy}");
        // At this servable load nearly everything completes.
        assert!(
            out.totals.completed as f64 > 0.97 * out.totals.offered as f64,
            "{policy}: {} of {}",
            out.totals.completed,
            out.totals.offered
        );
    }
}

#[test]
fn quality_degrades_gracefully_with_load_for_argus() {
    // Fig. 17's diverging-trend core: higher load → lower quality, but
    // throughput keeps tracking demand until saturation.
    let mut last_quality = f64::INFINITY;
    for qpm in [60.0, 120.0, 170.0] {
        let out = cfg(Policy::Argus, steady(qpm, 12), 8).run();
        let q = out.totals.effective_accuracy();
        assert!(
            q < last_quality + 0.15,
            "quality rose with load at {qpm}: {q}"
        );
        assert!(
            out.totals.mean_throughput_qpm(12.0) > 0.9 * qpm,
            "throughput fell behind at {qpm}"
        );
        last_quality = q;
    }
}
