//! The sharded cache plane end-to-end (`RunConfig::with_sharded_cache`).
//!
//! Three contracts pinned here:
//!
//! * **Unsharded parity** — `with_sharded_cache(1, 1)` is the external
//!   monolithic deployment and must be *bit-identical* to
//!   `with_lsh_cache` (same totals, same minutes, same retrieval stats);
//! * **Bit-determinism** — sharded runs are reproducible per seed, like
//!   every other configuration (`tests/determinism.rs`);
//! * **Fault-driven rebalance** — killing workers mid-run degrades the
//!   cache hit-rate (shards lose replicas) without crashing the run, and
//!   replication bounds the damage: an `R = 2` plane keeps a strictly
//!   better hit-rate through the same fault than an `R = 1` plane, whose
//!   dead shards lose their entries outright.

use argus::core::{FaultEvent, Policy, RunConfig, RunOutcome};
use argus::workload::{steady, twitter_like};

/// The quickstart trace (`examples/quickstart.rs`), truncated so the
/// debug-mode suite stays quick.
fn quickstart(policy: Policy) -> RunConfig {
    let mut cfg = RunConfig::new(policy, twitter_like(42, 20)).with_seed(42);
    cfg.classifier_train_size = 1500;
    cfg
}

fn assert_identical(a: &RunOutcome, b: &RunOutcome) {
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.minutes, b.minutes);
    assert_eq!(a.level_completions, b.level_completions);
    assert_eq!(a.quality_samples, b.quality_samples);
    assert_eq!(a.retrieval, b.retrieval);
    assert_eq!(a.switches, b.switches);
}

#[test]
fn unsharded_plane_is_bit_identical_to_monolithic_lsh() {
    let lsh = quickstart(Policy::Argus).with_lsh_cache().run();
    let plane = quickstart(Policy::Argus).with_sharded_cache(1, 1).run();
    assert_identical(&lsh, &plane);
    // The parity is only meaningful if the cache actually served lookups.
    assert!(plane.retrieval.lookups > 100, "{:?}", plane.retrieval);
    assert!(plane.retrieval.hits() > 0, "{:?}", plane.retrieval);
}

#[test]
fn sharded_runs_are_bit_deterministic() {
    let run = || quickstart(Policy::Argus).with_sharded_cache(4, 2).run();
    let a = run();
    let b = run();
    assert_identical(&a, &b);
    assert!(a.totals.completed > 0);
}

#[test]
fn sharded_hit_rate_stays_near_monolithic_at_equal_capacity() {
    // Locality routing costs a sliver of cross-shard recall; per-shard
    // FIFO caps cost a sliver of effective capacity under skew. Together
    // they must stay a sliver on the serving path.
    let mono = quickstart(Policy::Argus).with_lsh_cache().run();
    let plane = quickstart(Policy::Argus).with_sharded_cache(8, 2).run();
    assert_eq!(mono.totals.offered, plane.totals.offered);
    let (hm, hp) = (mono.retrieval.hit_rate(), plane.retrieval.hit_rate());
    assert!(
        hp > hm - 0.15,
        "sharded hit-rate {hp:.3} vs monolithic {hm:.3}"
    );
    // Headline metrics move only marginally.
    let ratio = plane.totals.completed as f64 / mono.totals.completed as f64;
    assert!((ratio - 1.0).abs() < 0.05, "completed ratio {ratio:.4}");
    let dq = (plane.totals.effective_accuracy() - mono.totals.effective_accuracy()).abs();
    assert!(dq < 0.5, "quality gap {dq:.3}");
}

#[test]
fn every_policy_runs_on_the_sharded_plane() {
    // The plane sits behind the pipeline's CacheGate, so every policy gets
    // it for free: cache-using policies retrieve through it, the rest
    // simply never open the gate.
    for policy in Policy::ALL {
        let out = RunConfig::new(policy, steady(90.0, 5))
            .with_seed(3)
            .with_sharded_cache(4, 2)
            .run();
        assert!(
            out.totals.completed > 300,
            "{policy}: completed {}",
            out.totals.completed
        );
        if policy.uses_cache() {
            assert!(out.retrieval.lookups > 0, "{policy}: no lookups");
        } else {
            assert_eq!(out.retrieval.lookups, 0, "{policy}: unexpected lookups");
        }
    }
}

fn faulted(replication: usize) -> RunOutcome {
    // Workers 0 and 1 die at minute 4 and return (cold) at minute 9. With
    // 4 shards over 8 workers, R = 1 places exactly one replica of shards
    // 0 and 1 on the dead workers (their entries are lost); R = 2 stripes
    // second copies onto workers 4 and 5, which take over.
    RunConfig::new(Policy::Argus, steady(100.0, 14))
        .with_seed(11)
        .with_sharded_cache(4, replication)
        .with_faults(vec![
            FaultEvent::WorkerFail {
                at_minute: 4.0,
                workers: vec![0, 1],
            },
            FaultEvent::WorkerRecover {
                at_minute: 9.0,
                workers: vec![0, 1],
            },
        ])
        .run()
}

#[test]
fn worker_fault_degrades_hit_rate_without_crashing() {
    let out = faulted(1);
    // The run keeps serving through the fault (reduced capacity, deeper
    // approximation) — degraded, never down.
    assert!(
        out.totals.completed as f64 > 0.75 * out.totals.offered as f64,
        "{:?}",
        out.totals
    );
    assert!(out.retrieval.lookups > 200, "{:?}", out.retrieval);
    // The unreplicated plane lost shards: the hit-rate is visibly below
    // the fault-free run's (queries whose probe set died serve misses).
    let clean = RunConfig::new(Policy::Argus, steady(100.0, 14))
        .with_seed(11)
        .with_sharded_cache(4, 1)
        .run();
    assert!(
        out.retrieval.hit_rate() < clean.retrieval.hit_rate() - 0.005,
        "faulted {:.4} vs clean {:.4}",
        out.retrieval.hit_rate(),
        clean.retrieval.hit_rate()
    );
}

#[test]
fn replication_preserves_entries_through_the_fault() {
    let r1 = faulted(1);
    let r2 = faulted(2);
    // Same compute-plane fault; only the cache plane differs. The
    // replicated plane fails over instead of losing shard contents, so
    // its hit-rate rides through the fault essentially unharmed.
    assert!(
        r2.retrieval.hit_rate() > r1.retrieval.hit_rate() + 0.005,
        "R=2 hit-rate {:.4} not above R=1 {:.4}",
        r2.retrieval.hit_rate(),
        r1.retrieval.hit_rate()
    );
    assert!(
        r2.retrieval.hit_rate() > 0.99,
        "R=2 hit-rate {:.4} did not ride through the fault",
        r2.retrieval.hit_rate()
    );
}
