//! The `argus-des` RNG-stream contract, end to end: a run is a pure
//! function of `(policy, trace, seed)`. Same seed ⇒ bit-identical
//! outcomes for every policy; different seeds ⇒ different outcomes.

use argus::core::{
    preemption_events, ActorPacing, AutoscalePolicy, CascadeConfig, Policy, RunConfig,
};
use argus::models::GpuArch;
use argus::workload::{preemption_storm, twitter_like, Trace};

fn run(policy: Policy, trace: Trace, seed: u64) -> argus::core::RunOutcome {
    let mut c = RunConfig::new(policy, trace).with_seed(seed);
    c.classifier_train_size = 800;
    c.run()
}

#[test]
fn same_seed_is_bit_identical_for_every_policy() {
    let trace = twitter_like(11, 8);
    for policy in Policy::ALL {
        let a = run(policy, trace.clone(), 11);
        let b = run(policy, trace.clone(), 11);
        // RunTotals is Copy + PartialEq over exact u64/f64 values, so this
        // equality is bitwise reproducibility, not approximate agreement.
        assert_eq!(a.totals, b.totals, "{policy}: totals diverged");
        assert_eq!(a.minutes, b.minutes, "{policy}: minute records diverged");
        assert_eq!(
            a.level_completions, b.level_completions,
            "{policy}: level completions diverged"
        );
        assert_eq!(
            a.quality_samples, b.quality_samples,
            "{policy}: quality samples diverged"
        );
        assert_eq!(a.switches, b.switches, "{policy}: switch counts diverged");
    }
}

#[test]
fn different_seeds_give_different_outcomes() {
    // Different seeds reseed every stream (arrivals, service jitter,
    // routing); the offered load itself is Poisson, so at minimum the
    // arrival count should differ. Check a weaker, policy-independent
    // signal to stay robust: the full totals struct.
    let trace = twitter_like(11, 8);
    for policy in Policy::ALL {
        let a = run(policy, trace.clone(), 11);
        let b = run(policy, trace.clone(), 12);
        assert_ne!(
            a.totals, b.totals,
            "{policy}: seeds 11 and 12 gave identical totals"
        );
    }
}

#[test]
fn seed_only_affects_run_not_trace_identity() {
    // The trace is an input, not derived from the run seed: two runs over
    // the same trace with different seeds still offer load from the same
    // per-minute schedule (expected counts match within Poisson noise).
    let trace = twitter_like(11, 8);
    let a = run(Policy::ClipperHt, trace.clone(), 1);
    let b = run(Policy::ClipperHt, trace.clone(), 2);
    let expected = trace.total_queries();
    for (label, out) in [("seed1", &a), ("seed2", &b)] {
        let offered = out.totals.offered as f64;
        assert!(
            (offered - expected).abs() < 5.0 * expected.sqrt(),
            "{label}: offered {offered} vs expected {expected}"
        );
    }
}

#[test]
fn outcome_is_identical_across_actor_pacing_modes() {
    // The invariant D1–D3 protect: the actor plane's execution substrate
    // — 1-core inline fast path vs. fully multi-threaded pacing — must
    // not leak into any result. Same seed, same trace, three pacing
    // modes, bit-identical `RunOutcome` fingerprints.
    let trace = twitter_like(13, 8);
    for policy in [Policy::Argus, Policy::Nirvana] {
        let run_with = |pacing: ActorPacing| {
            let mut c = RunConfig::new(policy, trace.clone())
                .with_seed(29)
                .with_lsh_cache()
                .with_actor_pacing(pacing);
            c.classifier_train_size = 800;
            c.run()
        };
        let auto = run_with(ActorPacing::Auto);
        let inline = run_with(ActorPacing::SingleCoreInline);
        let threaded = run_with(ActorPacing::Threaded);
        for (mode, out) in [("inline", &inline), ("threaded", &threaded)] {
            assert_eq!(auto.totals, out.totals, "{policy}/{mode}: totals");
            assert_eq!(auto.minutes, out.minutes, "{policy}/{mode}: minutes");
            assert_eq!(
                auto.level_completions, out.level_completions,
                "{policy}/{mode}: level completions"
            );
            assert_eq!(
                auto.quality_samples, out.quality_samples,
                "{policy}/{mode}: quality samples"
            );
            assert_eq!(
                auto.retrieval, out.retrieval,
                "{policy}/{mode}: retrieval stats"
            );
            assert_eq!(auto.pools, out.pools, "{policy}/{mode}: pool stats");
            assert_eq!(auto.switches, out.switches, "{policy}/{mode}: switches");
        }
    }
}

#[test]
fn elastic_fleet_outcome_is_identical_across_pacing_modes() {
    // The fleet stage's membership/tick/preemption traffic must obey the
    // same substrate-independence contract as every other stage: an
    // autoscaled fleet riding a spot-pool preemption storm is bit-identical
    // under all three pacing modes.
    let trace = twitter_like(19, 20).normalize_to(60.0, 260.0);
    let schedule = preemption_storm(19, 8, 4, 0.5, 9.0);
    let run_with = |pacing: ActorPacing| {
        let mut c = RunConfig::new(Policy::Argus, trace.clone())
            .with_seed(19)
            .with_autoscaler(AutoscalePolicy::default())
            .with_spot_pool(GpuArch::A10G, 4, 0.6)
            .with_faults(preemption_events(&schedule, 30.0))
            .with_actor_pacing(pacing);
        c.classifier_train_size = 800;
        c.run()
    };
    let auto = run_with(ActorPacing::Auto);
    let inline = run_with(ActorPacing::SingleCoreInline);
    let threaded = run_with(ActorPacing::Threaded);
    for (mode, out) in [("inline", &inline), ("threaded", &threaded)] {
        assert_eq!(auto.totals, out.totals, "{mode}: totals");
        assert_eq!(auto.minutes, out.minutes, "{mode}: minutes");
        assert_eq!(
            auto.level_completions, out.level_completions,
            "{mode}: level completions"
        );
        assert_eq!(auto.fleet, out.fleet, "{mode}: fleet stats");
        assert_eq!(auto.cost, out.cost, "{mode}: cost report");
        assert_eq!(auto.pools, out.pools, "{mode}: pool stats");
    }
    // The storm actually fired on this scenario.
    assert_eq!(
        auto.fleet.preemptions_ridden + auto.fleet.preemptions_lost,
        2
    );
}

#[test]
fn cascade_outcome_is_identical_across_pacing_modes() {
    // The cascade plane routes second passes through the ordinary
    // dispatch path and snapshots the escalation-rate EWMA through a
    // metrics-stage rendezvous; both must obey the same
    // substrate-independence contract as every other stage.
    let trace = twitter_like(17, 10).normalize_to(40.0, 120.0);
    let run_with = |pacing: ActorPacing| {
        let mut c = RunConfig::new(Policy::Argus, trace.clone())
            .with_seed(17)
            .with_cascade(CascadeConfig::new())
            .with_actor_pacing(pacing);
        c.classifier_train_size = 800;
        c.run()
    };
    let auto = run_with(ActorPacing::Auto);
    let inline = run_with(ActorPacing::SingleCoreInline);
    let threaded = run_with(ActorPacing::Threaded);
    // The cascade actually cascaded on this scenario.
    let stats = auto.cascade.as_ref().expect("cascade stats");
    assert!(stats.escalated_total() > 0, "{stats:?}");
    for (mode, out) in [("inline", &inline), ("threaded", &threaded)] {
        assert_eq!(auto.totals, out.totals, "{mode}: totals");
        assert_eq!(auto.minutes, out.minutes, "{mode}: minutes");
        assert_eq!(
            auto.level_completions, out.level_completions,
            "{mode}: level completions"
        );
        assert_eq!(
            auto.quality_samples, out.quality_samples,
            "{mode}: quality samples"
        );
        assert_eq!(auto.cascade, out.cascade, "{mode}: cascade stats");
        assert_eq!(auto.pools, out.pools, "{mode}: pool stats");
    }
}
