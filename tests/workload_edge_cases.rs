//! Degenerate workloads through the full stack: zero-duration, zero-rate
//! and single-request traces must not panic and must keep the per-minute
//! accounting in `argus-core`'s metrics consistent with the run totals.

use argus::core::{Policy, RunConfig, RunOutcome};
use argus::workload::{bursty, diagonal, steady, twitter_like, Trace};

fn run(policy: Policy, trace: Trace) -> RunOutcome {
    let mut c = RunConfig::new(policy, trace).with_seed(9);
    c.classifier_train_size = 400;
    c.run()
}

/// Per-minute records must re-aggregate to the run totals.
fn assert_accounting_consistent(out: &RunOutcome, label: &str) {
    let offered: u64 = out.minutes.iter().map(|m| m.offered).sum();
    let completed: u64 = out.minutes.iter().map(|m| m.completed).sum();
    let violations: u64 = out.minutes.iter().map(|m| m.violations).sum();
    let in_slo: u64 = out.minutes.iter().map(|m| m.in_slo).sum();
    assert_eq!(offered, out.totals.offered, "{label}: offered mismatch");
    assert_eq!(
        completed, out.totals.completed,
        "{label}: completed mismatch"
    );
    assert_eq!(
        violations, out.totals.violations,
        "{label}: violations mismatch"
    );
    assert_eq!(in_slo, out.totals.in_slo, "{label}: in-SLO mismatch");
    assert!(
        out.totals.completed <= out.totals.offered,
        "{label}: conservation"
    );
    assert!(
        out.totals.in_slo <= out.totals.completed,
        "{label}: in-SLO bound"
    );
    // Minute indices are unique and in order.
    for w in out.minutes.windows(2) {
        assert!(w[0].minute < w[1].minute, "{label}: minute order");
    }
}

#[test]
fn zero_duration_traces_run_and_offer_nothing() {
    for (label, trace) in [
        ("steady", steady(100.0, 0)),
        ("bursty", bursty(1, 0, 50.0, 150.0)),
        ("twitter", twitter_like(1, 0)),
        ("ramp", diagonal(40.0, 250.0, 0)),
    ] {
        for policy in [Policy::Argus, Policy::Proteus, Policy::Nirvana] {
            let out = run(policy, trace.clone());
            assert_eq!(out.totals.offered, 0, "{label}/{policy}");
            assert_eq!(out.totals.completed, 0, "{label}/{policy}");
            assert_eq!(out.totals.violations, 0, "{label}/{policy}");
            assert_accounting_consistent(&out, label);
        }
    }
}

#[test]
fn zero_rate_traces_run_without_arrivals() {
    for (label, trace) in [
        ("steady", steady(0.0, 5)),
        ("bursty", bursty(2, 5, 0.0, 0.0)),
        ("ramp", diagonal(0.0, 0.0, 5)),
    ] {
        for policy in [Policy::Argus, Policy::Sommelier, Policy::ClipperHt] {
            let out = run(policy, trace.clone());
            assert_eq!(out.totals.offered, 0, "{label}/{policy}");
            assert_eq!(out.totals.completed, 0, "{label}/{policy}");
            assert_accounting_consistent(&out, label);
        }
    }
}

#[test]
fn single_request_scale_traces_complete_cleanly() {
    // ~1 expected arrival: whatever arrives must be served and accounted.
    for (label, trace) in [
        ("steady", steady(1.0, 1)),
        ("ramp", diagonal(1.0, 1.0, 1)),
        ("bursty", bursty(3, 1, 1.0, 1.0)),
    ] {
        for policy in [Policy::Argus, Policy::Proteus, Policy::ClipperHa] {
            let out = run(policy, trace.clone());
            assert_accounting_consistent(&out, label);
            // At 1 QPM nothing queues: every completion is inside the SLO.
            assert_eq!(out.totals.completed, out.totals.offered, "{label}/{policy}");
            assert_eq!(out.totals.violations, 0, "{label}/{policy}");
        }
    }
}

#[test]
fn mixed_zero_and_positive_minutes_account_consistently() {
    // Dead air before and after a burst: offered load lands only in the
    // active minutes and the records stay consistent.
    let trace = Trace::from_qpm(vec![0.0, 0.0, 90.0, 90.0, 0.0, 0.0]);
    for policy in [Policy::Argus, Policy::Nirvana] {
        let out = run(policy, trace.clone());
        assert!(out.totals.offered > 0, "{policy}");
        assert_accounting_consistent(&out, "mixed");
        for m in &out.minutes {
            if m.minute == 0 || m.minute == 1 {
                assert_eq!(m.offered, 0, "{policy}: minute {}", m.minute);
            }
        }
    }
}
