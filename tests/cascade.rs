//! The cascade serving plane's contract (DESIGN.md §13):
//!
//! * cascade **off** (the default) leaves `RunOutcome::cascade` empty —
//!   bit-identity with the pre-cascade tree is pinned by the goldens in
//!   `tests/observability.rs` / `tests/fleet.rs`;
//! * cascade **on** surfaces [`CascadeStats`] whose counts balance the
//!   run totals exactly;
//! * degenerate configurations behave degenerately: a first pass at the
//!   escalation rung never escalates, threshold `0.0` escalates every
//!   first pass below the escalation rung, threshold `1.0` never
//!   escalates;
//! * escalated jobs keep their **original arrival time**: SLO violation
//!   accounting charges the full first-pass + queue + second-pass
//!   latency, pinned through the span log.

use argus::core::{CascadeConfig, Policy, RunConfig, SpanKind, TelemetryConfig};
use argus::models::{ApproxLevel, GpuArch, Strategy};
use argus::workload::twitter_like;

fn cascade_cfg(seed: u64, minutes: usize, cc: CascadeConfig) -> RunConfig {
    let mut c = RunConfig::new(Policy::Argus, twitter_like(seed, minutes))
        .with_seed(seed)
        .with_cascade(cc);
    c.classifier_train_size = 800;
    c
}

/// The run SLO in integer microseconds: three times the base model's
/// (SD-XL, SM rung 0) compute time on the default single-A100 fleet —
/// the same constant `MetricsCollector` derives.
fn slo_us() -> u64 {
    let base = ApproxLevel::ladder(Strategy::Sm)[0].compute_secs(GpuArch::A100);
    (3.0 * base * 1e6).round() as u64
}

#[test]
fn cascade_stats_balance_the_run_totals() {
    let out = cascade_cfg(11, 8, CascadeConfig::new()).run();
    let stats = out.cascade.as_ref().expect("cascade run carries stats");
    // The default threshold escalates a visible share of first passes.
    assert!(stats.escalated_total() > 0, "{stats:?}");
    assert!(stats.accepted_total() > 0, "{stats:?}");
    // Every judged first pass is either accepted or escalated.
    assert_eq!(
        stats.first_pass_total(),
        stats.accepted_total() + stats.escalated_total(),
        "{stats:?}"
    );
    // Exactly one completion per job, at its final pass: accepted first
    // passes plus completed second passes is the run's completion count.
    assert_eq!(
        stats.accepted_total() + stats.escalated_completed,
        out.totals.completed,
        "{stats:?}"
    );
    // The EWMA the planner prices with tracked the observed escalations
    // at the configured first-pass rung (the cheapest, Tiny-SD).
    let first_level = ApproxLevel::ladder(Strategy::Sm)[5];
    assert!(
        stats
            .escalation_rate
            .get(&first_level)
            .copied()
            .unwrap_or(0.0)
            > 0.0,
        "{stats:?}"
    );
    // The second pass buys quality on average (SD-XL vs the cheap rung).
    assert!(stats.quality_delta > 0.0, "{stats:?}");

    // And a cascade-off run carries no cascade artifacts at all.
    let mut off = RunConfig::new(Policy::Argus, twitter_like(11, 8)).with_seed(11);
    off.classifier_train_size = 800;
    assert!(off.run().cascade.is_none());
}

#[test]
fn first_pass_at_the_escalation_rung_is_a_no_op() {
    // First pass and escalation target the same rung: there is nothing
    // above the first pass to escalate to, so the discriminator verdict
    // degenerates to accept for every job.
    let cc = CascadeConfig::new()
        .with_first_pass(0)
        .with_escalate_to(0)
        .with_threshold(0.0);
    let out = cascade_cfg(7, 6, cc).run();
    let stats = out.cascade.as_ref().unwrap();
    assert_eq!(stats.escalated_total(), 0, "{stats:?}");
    assert_eq!(stats.escalated_completed, 0, "{stats:?}");
    assert_eq!(stats.quality_delta, 0.0, "{stats:?}");
    assert_eq!(stats.accepted_total(), out.totals.completed);
}

#[test]
fn threshold_zero_escalates_every_first_pass_below_the_top() {
    // Doubt is non-negative, so `doubt >= 0.0` always holds: every first
    // pass *not executed at the escalation rung* (Eq. 3 spill can place
    // first passes on any staffed rung, including the top) escalates.
    let out = cascade_cfg(11, 6, CascadeConfig::new().with_threshold(0.0)).run();
    let stats = out.cascade.as_ref().unwrap();
    let top = ApproxLevel::ladder(Strategy::Sm)[0];
    assert!(stats.escalated_total() > 0, "{stats:?}");
    for (level, n) in &stats.accepted {
        assert!(
            *level == top || *n == 0,
            "accepted {n} first passes at {level:?} under threshold 0.0"
        );
    }
    for (level, n) in &stats.first_pass {
        if *level != top {
            assert_eq!(stats.escalated.get(level), Some(n), "{level:?}");
        }
    }
}

#[test]
fn threshold_one_never_escalates() {
    // Doubt is clamped below 1.0, so `doubt >= 1.0` never holds.
    let out = cascade_cfg(11, 6, CascadeConfig::new().with_threshold(1.0)).run();
    let stats = out.cascade.as_ref().unwrap();
    assert_eq!(stats.escalated_total(), 0, "{stats:?}");
    assert_eq!(stats.escalated_completed, 0, "{stats:?}");
    assert_eq!(stats.accepted_total(), stats.first_pass_total());
    assert_eq!(stats.first_pass_total(), out.totals.completed);
}

#[test]
fn escalated_jobs_keep_their_original_arrival_for_slo_accounting() {
    // Saturate the fleet so escalated jobs queue twice, then check the
    // span log: each escalated job's terminal verdict is computed from
    // its *original* arrival, and at least one SLO violation exists that
    // the second pass alone would not explain — the violation is the
    // preserved first-pass latency.
    let trace = twitter_like(11, 8).normalize_to(60.0, 150.0);
    let mut c = RunConfig::new(Policy::Argus, trace)
        .with_seed(11)
        .with_cascade(CascadeConfig::new().with_threshold(0.05))
        .with_telemetry(TelemetryConfig::full());
    c.classifier_train_size = 800;
    let out = c.run();
    let spans = out.spans.as_ref().unwrap();
    let slo = slo_us();

    let mut arrive = std::collections::BTreeMap::new();
    let mut escalate = std::collections::BTreeMap::new();
    let mut terminal = std::collections::BTreeMap::new();
    for e in &spans.events {
        match e.kind {
            SpanKind::Arrive => {
                arrive.insert(e.job, e.t_us);
            }
            SpanKind::Escalate => {
                escalate.insert(e.job, e.t_us);
            }
            k if k.is_terminal() => {
                terminal.insert(e.job, (e.t_us, e.kind));
            }
            _ => {}
        }
    }
    assert!(!escalate.is_empty(), "no escalations in the scenario");
    assert!(!SpanKind::Escalate.is_terminal());

    let mut second_pass_within_slo_violations = 0u64;
    for (&job, &t_esc) in &escalate {
        let t_arr = arrive[&job];
        assert!(t_esc > t_arr, "job {job}: escalation precedes arrival");
        let Some(&(t_term, kind)) = terminal.get(&job) else {
            continue; // stranded/lost second pass
        };
        if kind == SpanKind::Lost {
            continue;
        }
        // The verdict charges the full two-pass latency from the
        // original arrival — not from the escalation re-dispatch.
        let e2e = t_term - t_arr;
        let expect = if e2e > slo {
            SpanKind::Violation
        } else {
            SpanKind::Complete
        };
        assert_eq!(kind, expect, "job {job}: e2e {e2e}us vs slo {slo}us");
        if kind == SpanKind::Violation && t_term - t_esc <= slo {
            second_pass_within_slo_violations += 1;
        }
    }
    // At least one violation is attributable only to the preserved
    // arrival: its second pass alone sat within the SLO.
    assert!(
        second_pass_within_slo_violations > 0,
        "no violation demonstrates original-arrival accounting"
    );
}
