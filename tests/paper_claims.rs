//! Cross-crate checks of the paper's quantitative claims, at test scale.
//! The full-scale numbers live in the bench harnesses (EXPERIMENTS.md);
//! these tests pin the *relationships* so regressions are caught by
//! `cargo test`.

use argus::core::{oda, AllocationProblem, Pasm, Policy, RunConfig};
use argus::models::{latency, ApproxLevel, GpuArch, ModelVariant, Strategy};
use argus::prompts::PromptGenerator;
use argus::quality::{simulate_suitability, DegradationProfile, QualityOracle};
use argus::workload::{steady, twitter_like};

fn cfg(policy: Policy, trace: argus::workload::Trace, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(policy, trace).with_seed(seed);
    c.classifier_train_size = 1500;
    c
}

#[test]
fn fig1_sdxl_cluster_cannot_meet_trace_peaks() {
    let trace = twitter_like(21, 100);
    let capacity = 8.0 * latency::peak_throughput_per_min(ModelVariant::SdXl, GpuArch::A100);
    assert!(trace.peak() > 1.3 * capacity, "trace peak under capacity");
    assert!(trace.trough() < 0.6 * capacity, "trace trough too high");
}

#[test]
fn fig10_oda_recovers_most_of_the_random_redistribution_loss() {
    let oracle = QualityOracle::new(22);
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    let prompts = PromptGenerator::new(22).generate_batch(6000);
    let phi = oracle.optimal_choice_histogram(&prompts, &ladder);
    let omega = AllocationProblem::from_ladder(&ladder, GpuArch::A100, 0.02, 8, 185.0)
        .solve_exact()
        .omega_normalized();
    let profile = DegradationProfile::profile(&oracle, &prompts, &ladder);
    let oda_cost = oda(&phi, &omega)
        .unwrap()
        .expected_degradation(&phi, &profile);
    let rand_cost = Pasm::proportional(&omega)
        .unwrap()
        .expected_degradation(&phi, &profile);
    assert!(
        oda_cost < 0.75 * rand_cost,
        "oda {oda_cost:.3} vs random {rand_cost:.3}"
    );
}

#[test]
fn s55_classifier_routing_beats_random_routing() {
    // §5.5: random variant selection degrades quality vs the classifier.
    let trace = steady(160.0, 15);
    let argus = cfg(Policy::Argus, trace.clone(), 23).run();
    let pac = cfg(Policy::Pac, trace, 23).run();
    assert!(
        argus.totals.effective_accuracy() > pac.totals.effective_accuracy() + 0.15,
        "argus {:.2} vs pac {:.2}",
        argus.totals.effective_accuracy(),
        pac.totals.effective_accuracy()
    );
}

#[test]
fn s54_suitability_study_ordering() {
    // §5.4 ordering at test scale: Argus > Proteus > Clipper-HT.
    let trace = steady(150.0, 15);
    let rate = |p: Policy| {
        let out = cfg(p, trace.clone(), 24).run();
        simulate_suitability(&out.quality_samples, 186).prompt_relevance
    };
    let argus = rate(Policy::Argus);
    let proteus = rate(Policy::Proteus);
    let ht = rate(Policy::ClipperHt);
    assert!(argus > proteus, "argus {argus:.3} vs proteus {proteus:.3}");
    assert!(proteus > ht, "proteus {proteus:.3} vs ht {ht:.3}");
    assert!(argus > 0.60, "argus suitability {argus:.3}");
    assert!(ht < 0.55, "ht suitability {ht:.3}");
}

#[test]
fn s57_utilization_beats_peak_provisioning() {
    let trace = twitter_like(25, 60);
    let argus = cfg(Policy::Argus, trace.clone(), 25).run();
    let peak_workers = (trace.peak() / 14.28).ceil() as usize;
    let peak = cfg(Policy::ClipperHa, trace, 25)
        .with_workers(peak_workers)
        .run();
    assert!(
        argus.mean_utilization > 1.3 * peak.mean_utilization,
        "argus {:.2} vs peak-provisioned {:.2}",
        argus.mean_utilization,
        peak.mean_utilization
    );
}

#[test]
fn s57_solver_under_100ms_at_tens_of_workers() {
    let ladder = ApproxLevel::ladder(Strategy::Ac);
    let problem = AllocationProblem::from_ladder(&ladder, GpuArch::A100, 0.02, 32, 500.0);
    // lint: allow(wall-clock) — the §5.7 solver-overhead claim is a
    // wall-clock budget; nothing simulated depends on this read.
    let start = std::time::Instant::now();
    let _ = problem.solve_exact();
    let elapsed = start.elapsed();
    // Debug-build generosity: the §5.7 claim is <100 ms in release; allow
    // 1 s here so the regression guard still bites on quadratic blowups.
    assert!(elapsed.as_millis() < 1000, "solver took {elapsed:?}");
}

#[test]
fn fig17_saturation_appears_only_past_capacity() {
    let below = cfg(Policy::Argus, steady(150.0, 8), 26).run();
    let above = cfg(Policy::Argus, steady(280.0, 8), 26).run();
    assert_eq!(below.saturated_minutes, 0, "premature saturation");
    assert!(above.saturated_minutes >= 4, "no saturation signal");
}

#[test]
fn obs5_batching_would_not_help_the_serving_cluster() {
    // Observation 5 end-to-end: the throughput gain from batch-2 serving
    // would be under 10% for SD-XL while doubling latency — batch 1 wins
    // under a latency SLO.
    use argus::models::batching::unet_pass_profile;
    let p = unet_pass_profile(ModelVariant::SdXl);
    let speedup = p.throughput_speedup(GpuArch::A100, 2);
    let inflation = p.latency_inflation(GpuArch::A100, 2);
    assert!(speedup < 1.1, "speedup {speedup}");
    assert!(inflation > 1.8, "inflation {inflation}");
}

#[test]
fn ac_and_sm_ladders_cover_the_same_throughput_span() {
    // The switcher can substitute SM for AC (and back) without losing the
    // ability to meet load: their fastest levels are within 10%.
    let gpu = GpuArch::A100;
    let ac_max = ApproxLevel::ladder(Strategy::Ac)
        .iter()
        .map(|l| l.peak_throughput_per_min(gpu))
        .fold(0.0f64, f64::max);
    let sm_max = ApproxLevel::ladder(Strategy::Sm)
        .iter()
        .map(|l| l.peak_throughput_per_min(gpu))
        .fold(0.0f64, f64::max);
    assert!(
        (ac_max - sm_max).abs() / sm_max < 0.10,
        "ac {ac_max} sm {sm_max}"
    );
}
