//! Cross-crate integration: fault handling (§5.6 / Fig. 20).

use argus::cachestore::NetworkRegime;
use argus::core::{FaultEvent, Policy, RunConfig, SwitcherState};
use argus::workload::steady;

fn cfg(policy: Policy, trace: argus::workload::Trace, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(policy, trace).with_seed(seed);
    c.classifier_train_size = 1500;
    c
}

#[test]
fn half_cluster_failure_degrades_quality_not_throughput_at_moderate_load() {
    // Fig. 20a first failure: at moderate load the solver re-allocates
    // within a minute and throughput barely dips — quality absorbs the hit
    // via deeper approximation.
    let trace = steady(90.0, 24);
    let faults = vec![
        FaultEvent::WorkerFail {
            at_minute: 8.0,
            workers: vec![0, 1, 2, 3],
        },
        FaultEvent::WorkerRecover {
            at_minute: 16.0,
            workers: vec![0, 1, 2, 3],
        },
    ];
    let out = cfg(Policy::Argus, trace, 11).with_faults(faults).run();
    let healthy: Vec<_> = out.minutes.iter().filter(|m| m.minute < 8).collect();
    let failed: Vec<_> = out
        .minutes
        .iter()
        .filter(|m| (9..16).contains(&m.minute))
        .collect();
    let throughput = |ms: &[&argus::core::MinuteRecord]| {
        ms.iter().map(|m| m.completed).sum::<u64>() as f64 / ms.len() as f64
    };
    let quality = |ms: &[&argus::core::MinuteRecord]| {
        let in_slo: u64 = ms.iter().map(|m| m.in_slo).sum();
        let q: f64 = ms.iter().map(|m| m.quality_sum).sum();
        q / in_slo.max(1) as f64
    };
    // Throughput holds within 15%; quality visibly drops.
    assert!(
        throughput(&failed) > 0.85 * throughput(&healthy),
        "throughput collapsed: {} vs {}",
        throughput(&failed),
        throughput(&healthy)
    );
    assert!(
        quality(&failed) < quality(&healthy) - 0.4,
        "quality did not degrade: {} vs {}",
        quality(&failed),
        quality(&healthy)
    );
}

#[test]
fn high_load_failure_pushes_violations_up() {
    // Fig. 20a second failure: with load near half-cluster capacity,
    // violations rise sharply during the outage.
    let trace = steady(150.0, 24);
    let faults = vec![FaultEvent::WorkerFail {
        at_minute: 10.0,
        workers: vec![0, 1, 2, 3],
    }];
    let out = cfg(Policy::Argus, trace, 12).with_faults(faults).run();
    let before: u64 = out
        .minutes
        .iter()
        .filter(|m| m.minute < 10)
        .map(|m| m.violations)
        .sum();
    let after: u64 = out
        .minutes
        .iter()
        .filter(|m| m.minute >= 12)
        .map(|m| m.violations)
        .sum();
    assert!(after > 3 * before.max(1), "before {before} after {after}");
}

#[test]
fn outage_switches_to_sm_and_back() {
    let trace = steady(100.0, 30);
    let out = cfg(Policy::Argus, trace, 13)
        .with_network_events(vec![
            (8.0, NetworkRegime::Outage),
            (18.0, NetworkRegime::Normal),
        ])
        .run();
    assert!(
        out.switches.0 >= 1,
        "never switched to SM: {:?}",
        out.switches
    );
    assert!(
        out.switches.1 >= 1,
        "never switched back: {:?}",
        out.switches
    );
    // SM-mode completions (small-model variants) must exist.
    let sm_completions: u64 = out
        .level_completions
        .iter()
        .filter(|(l, _)| matches!(l, argus::models::ApproxLevel::Sm(_)))
        .map(|&(_, c)| c)
        .sum();
    assert!(sm_completions > 50, "sm completions {sm_completions}");
}

#[test]
fn frozen_strategy_suffers_through_congestion() {
    // Fig. 20b's black line: with switching disabled, congested retrieval
    // inflates every AC request; the adaptive system does better.
    let trace = steady(130.0, 26);
    let events = vec![(6.0, NetworkRegime::Congested)];
    let adaptive = cfg(Policy::Argus, trace.clone(), 14)
        .with_network_events(events.clone())
        .run();
    let frozen = cfg(Policy::Argus, trace, 14)
        .with_network_events(events)
        .without_strategy_switch()
        .run();
    assert!(
        frozen.totals.slo_violation_ratio() > adaptive.totals.slo_violation_ratio() + 0.05,
        "adaptive {:.3} vs frozen {:.3}",
        adaptive.totals.slo_violation_ratio(),
        frozen.totals.slo_violation_ratio()
    );
}

#[test]
fn total_cluster_failure_loses_but_accounts_for_queries() {
    let trace = steady(60.0, 8);
    let out = cfg(Policy::Argus, trace, 15)
        .with_faults(vec![FaultEvent::WorkerFail {
            at_minute: 3.0,
            workers: (0..8).collect(),
        }])
        .run();
    // Everything offered after the failure is a violation, not a hang.
    assert!(out.totals.violations > 0);
    assert!(out.totals.completed < out.totals.offered);
    assert!(out.totals.slo_violation_ratio() > 0.4);
}

#[test]
fn recover_of_never_failed_worker_is_inert() {
    // A recover aimed at healthy workers is the documented no-op: the run
    // must be bit-identical to one with no fault schedule at all.
    let trace = steady(90.0, 12);
    let base = cfg(Policy::Argus, trace.clone(), 11).run();
    let recovered = cfg(Policy::Argus, trace, 11)
        .with_faults(vec![FaultEvent::WorkerRecover {
            at_minute: 5.3,
            workers: vec![2, 3],
        }])
        .run();
    assert_eq!(base.totals, recovered.totals);
    assert_eq!(base.minutes, recovered.minutes);
    assert_eq!(base.level_completions, recovered.level_completions);
}

#[test]
fn duplicate_same_minute_faults_are_idempotent() {
    // Failing an already-failed worker is absorbed: the duplicate event
    // must not lose extra jobs, double-count, or perturb determinism.
    let trace = steady(90.0, 12);
    let single = cfg(Policy::Argus, trace.clone(), 11)
        .with_faults(vec![FaultEvent::WorkerFail {
            at_minute: 5.3,
            workers: vec![0, 1],
        }])
        .run();
    let duplicated = cfg(Policy::Argus, trace, 11)
        .with_faults(vec![
            FaultEvent::WorkerFail {
                at_minute: 5.3,
                workers: vec![0, 1],
            },
            FaultEvent::WorkerFail {
                at_minute: 5.3,
                workers: vec![1],
            },
        ])
        .run();
    assert_eq!(single.totals, duplicated.totals);
    assert_eq!(single.minutes, duplicated.minutes);
    assert_eq!(single.level_completions, duplicated.level_completions);
}

#[test]
fn zero_warning_preemption_degrades_to_worker_fail() {
    // `warning_secs: 0` is an unwarned reclaim: counted in the preemption
    // tallies, but the serving outcome is bit-identical to a WorkerFail
    // of the same workers at the same instant.
    let trace = steady(90.0, 12);
    let failed = cfg(Policy::Argus, trace.clone(), 11)
        .with_faults(vec![FaultEvent::WorkerFail {
            at_minute: 5.3,
            workers: vec![0, 1, 2],
        }])
        .run();
    let preempted = cfg(Policy::Argus, trace, 11)
        .with_faults(vec![FaultEvent::Preemption {
            at_minute: 5.3,
            workers: vec![0, 1, 2],
            warning_secs: 0.0,
        }])
        .run();
    assert_eq!(failed.totals, preempted.totals);
    assert_eq!(failed.minutes, preempted.minutes);
    assert_eq!(failed.level_completions, preempted.level_completions);
    // Only the telemetry differs.
    assert_eq!(
        preempted.fleet.preemptions_ridden + preempted.fleet.preemptions_lost,
        3
    );
    assert_eq!(
        failed.fleet.preemptions_ridden + failed.fleet.preemptions_lost,
        0
    );
}

#[test]
fn switcher_state_machine_is_exposed() {
    // The switcher type is part of the public API for operators.
    use argus::core::{StrategySwitcher, SwitcherConfig};
    let s = StrategySwitcher::new(SwitcherConfig::default());
    assert_eq!(s.state(), SwitcherState::Ac);
}
