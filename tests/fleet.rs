//! The elastic-fleet subsystem's contract (autoscaling, spot pools,
//! cost accounting — DESIGN.md §11):
//!
//! * the default path (no autoscaler, no spot pools) is **bit-identical
//!   to the pre-fleet tree**, pinned by the PR 7 golden fingerprint;
//! * autoscaled and preemption-storm runs are bit-deterministic;
//! * scale-in never evicts a worker with in-flight jobs (the driver
//!   asserts it; these runs exercise the assert);
//! * the `CostReport` reconciles with the membership telemetry: the
//!   dollar totals re-derived from the `MembershipSample` step function
//!   match the stage's own integral;
//! * the workspace still lints clean under `argus_lint` (D1–D7).

use argus::core::{
    on_demand_hourly, preemption_events, ActorPacing, AutoscalePolicy, Policy, RunConfig,
    RunOutcome,
};
use argus::models::GpuArch;
use argus::workload::{preemption_storm, twitter_like, Trace};

fn cfg(policy: Policy, trace: Trace, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(policy, trace).with_seed(seed);
    c.classifier_train_size = 800;
    c
}

/// A surge-then-trough trace: 12 minutes far above the static fleet's
/// capacity, then 18 minutes of near-idle — enough sustained pressure to
/// scale out and enough sustained idleness to scale back in.
fn surge_trace() -> Trace {
    let mut qpm = vec![260.0; 12];
    qpm.extend(std::iter::repeat_n(8.0, 18));
    Trace::from_qpm(qpm)
}

fn autoscaled_cfg(seed: u64) -> RunConfig {
    cfg(Policy::Argus, surge_trace(), seed).with_autoscaler(AutoscalePolicy::default())
}

/// A spot pool losing 3 of its 4 workers inside one minute, with a 30 s
/// reclaim warning.
fn storm_cfg(seed: u64) -> RunConfig {
    let schedule = preemption_storm(seed, 8, 4, 0.75, 10.0);
    cfg(Policy::Argus, twitter_like(seed, 24), seed)
        .with_spot_pool(GpuArch::A10G, 4, 0.6)
        .with_faults(preemption_events(&schedule, 30.0))
}

#[test]
fn default_path_matches_pr7_golden() {
    // The Argus golden from `tests/capacity_model.rs`, captured before
    // the fleet subsystem existed: the fleet stage's membership telemetry
    // must not perturb a single RNG draw or event on the default path.
    let out = cfg(Policy::Argus, twitter_like(11, 6), 11).run();
    assert_eq!(out.totals.offered, 609);
    assert_eq!(out.totals.completed, 609);
    assert_eq!(out.totals.violations, 234);
    assert_eq!(out.totals.in_slo, 375);
    assert_eq!(out.totals.model_loads, 8);
    assert_eq!(out.totals.quality_sum.to_bits(), 0x40bd510e9b2f72d6);
    assert_eq!(
        out.totals.relative_quality_sum.to_bits(),
        0x4076533a7c3778ed
    );
    assert_eq!(out.makespan_secs.to_bits(), 0x4076fde2ad3e920c);
    // Fleet telemetry exists but records a static fleet.
    assert_eq!(out.fleet.scale_out_events, 0);
    assert_eq!(out.fleet.scale_in_events, 0);
    assert_eq!(out.fleet.preemptions_ridden + out.fleet.preemptions_lost, 0);
    assert_eq!(out.fleet.peak_workers, 8);
    // A static 8×A100 fleet bills flat on-demand for the whole run.
    let expected = 8.0 * on_demand_hourly(GpuArch::A100) * out.makespan_secs / 3600.0;
    assert!(
        (out.cost.total_dollars - expected).abs() < 1e-9 * expected,
        "static-fleet cost {} vs {}",
        out.cost.total_dollars,
        expected
    );
    assert_eq!(out.cost.spot_dollars, 0.0);
}

fn assert_bit_identical(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.totals, b.totals, "{label}: totals");
    assert_eq!(a.minutes, b.minutes, "{label}: minutes");
    assert_eq!(a.level_completions, b.level_completions, "{label}: levels");
    assert_eq!(a.fleet, b.fleet, "{label}: fleet stats");
    assert_eq!(a.cost, b.cost, "{label}: cost report");
}

#[test]
fn autoscaled_runs_are_bit_deterministic_and_actually_scale() {
    let a = autoscaled_cfg(17).run();
    let b = autoscaled_cfg(17).run();
    assert_bit_identical(&a, &b, "autoscaled");
    // The surge drives scale-out, the trough drives scale-in; a run where
    // neither fires would not exercise the subsystem (or the driver's
    // scale-in-never-evicts-in-flight assertion).
    assert!(a.fleet.scale_out_events > 0, "{:?}", a.fleet);
    assert!(a.fleet.scale_in_events > 0, "{:?}", a.fleet);
    assert!(a.fleet.workers_added > 0);
    assert!(a.fleet.workers_retired > 0);
    assert!(a.fleet.peak_workers > 8, "never grew: {:?}", a.fleet);
    // Different seeds still diverge (the fleet plane must not have
    // collapsed the run into something seed-independent).
    let c = autoscaled_cfg(18).run();
    assert_ne!(a.totals, c.totals);
}

#[test]
fn autoscale_respects_configured_bounds() {
    let bounded = cfg(Policy::Argus, surge_trace(), 17)
        .with_autoscaler(AutoscalePolicy::default().with_bounds(GpuArch::A100, 8, 10))
        .run();
    assert!(bounded.fleet.peak_workers <= 10, "{:?}", bounded.fleet);
    // With min == the starting size, scale-in can never shrink below it:
    // retired workers never exceed added ones.
    assert!(bounded.fleet.workers_retired <= bounded.fleet.workers_added);
}

#[test]
fn spot_storm_runs_are_bit_deterministic_and_count_preemptions() {
    let a = storm_cfg(21).run();
    let b = storm_cfg(21).run();
    assert_bit_identical(&a, &b, "storm");
    // 3 of the 4 spot workers were reclaimed.
    assert_eq!(a.fleet.preemptions_ridden + a.fleet.preemptions_lost, 3);
    assert!(a.cost.spot_dollars > 0.0, "{:?}", a.cost);
    assert!(a.cost.on_demand_dollars > 0.0);
    // The spot pool shows up in the per-architecture GPU-minute split.
    let a10g = a
        .cost
        .gpu_minutes
        .iter()
        .find(|(g, _, _)| *g == GpuArch::A10G)
        .expect("A10G pool missing from gpu_minutes");
    assert!(a10g.2 > 0.0, "no spot minutes: {:?}", a.cost.gpu_minutes);
    assert_eq!(a10g.1, 0.0, "A10G pool is spot-only: {:?}", a.cost);
}

/// Re-derives the dollar and GPU-minute integrals from the membership
/// step function and checks them against the stage's own accounting.
fn reconcile(out: &RunOutcome, label: &str) {
    let samples = &out.fleet.samples;
    assert!(!samples.is_empty(), "{label}: no membership samples");
    assert_eq!(samples[0].t_secs, 0.0, "{label}: first sample not at t=0");
    let mut dollars = 0.0;
    let mut od_minutes: Vec<(GpuArch, f64)> = Vec::new();
    let mut spot_minutes: Vec<(GpuArch, f64)> = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        let until = samples
            .get(i + 1)
            .map(|n| n.t_secs)
            .unwrap_or(out.makespan_secs);
        let dt = until - s.t_secs;
        assert!(dt >= 0.0, "{label}: samples out of order");
        for &(gpu, discount, n) in &s.counts {
            let gpu_mins = n as f64 * dt / 60.0;
            dollars += on_demand_hourly(gpu) * (1.0 - discount) * n as f64 * dt / 3600.0;
            let bucket = if discount > 0.0 {
                &mut spot_minutes
            } else {
                &mut od_minutes
            };
            match bucket.iter_mut().find(|(g, _)| *g == gpu) {
                Some(e) => e.1 += gpu_mins,
                None => bucket.push((gpu, gpu_mins)),
            }
        }
    }
    let rel = (dollars - out.cost.total_dollars).abs() / out.cost.total_dollars.max(1e-12);
    assert!(
        rel < 1e-6,
        "{label}: cost integral {} vs report {}",
        dollars,
        out.cost.total_dollars
    );
    let split = out.cost.on_demand_dollars + out.cost.spot_dollars;
    assert!(
        (split - out.cost.total_dollars).abs() < 1e-9 * out.cost.total_dollars.max(1.0),
        "{label}: split does not add up"
    );
    for &(gpu, od, spot) in &out.cost.gpu_minutes {
        let want_od = od_minutes
            .iter()
            .find(|(g, _)| *g == gpu)
            .map(|&(_, m)| m)
            .unwrap_or(0.0);
        let want_spot = spot_minutes
            .iter()
            .find(|(g, _)| *g == gpu)
            .map(|&(_, m)| m)
            .unwrap_or(0.0);
        assert!(
            (od - want_od).abs() < 1e-6 * want_od.max(1.0),
            "{label}: {gpu:?} on-demand minutes {od} vs {want_od}"
        );
        assert!(
            (spot - want_spot).abs() < 1e-6 * want_spot.max(1.0),
            "{label}: {gpu:?} spot minutes {spot} vs {want_spot}"
        );
    }
    // $/1k-images is a pure quotient of the two headline numbers.
    if out.totals.completed > 0 {
        let want = out.cost.total_dollars * 1000.0 / out.totals.completed as f64;
        assert_eq!(out.cost.dollars_per_1k_images, want, "{label}");
    }
}

#[test]
fn cost_report_reconciles_with_membership_telemetry() {
    reconcile(&cfg(Policy::Argus, twitter_like(11, 6), 11).run(), "static");
    reconcile(&autoscaled_cfg(17).run(), "autoscaled");
    reconcile(&storm_cfg(21).run(), "storm");
}

#[test]
fn elastic_runs_are_identical_across_actor_pacing_modes() {
    // The fleet stage joins the star topology; like every other stage its
    // pacing must never leak into results.
    for (label, make) in [
        ("autoscaled", autoscaled_cfg as fn(u64) -> RunConfig),
        ("storm", storm_cfg as fn(u64) -> RunConfig),
    ] {
        let auto = make(33).with_actor_pacing(ActorPacing::Auto).run();
        let inline = make(33)
            .with_actor_pacing(ActorPacing::SingleCoreInline)
            .run();
        let threaded = make(33).with_actor_pacing(ActorPacing::Threaded).run();
        assert_bit_identical(&auto, &inline, &format!("{label}/inline"));
        assert_bit_identical(&auto, &threaded, &format!("{label}/threaded"));
    }
}

#[test]
fn workspace_lints_clean_with_the_fleet_stage() {
    // D6 (star topology) and D7 (reply arity) must stay green with the
    // fleet stage wired into the actor plane.
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let rep = argus_lint::run(&argus_lint::Config::for_repo(root)).expect("workspace scan");
    let denies: Vec<_> = rep
        .deny()
        .map(|f| format!("{} {}:{} {}", f.rule_id, f.file, f.line, f.message))
        .collect();
    assert_eq!(rep.deny_count(), 0, "{denies:#?}");
}
