//! The actor control plane's determinism and bugfix contract (ISSUE 6):
//!
//! * a seeded run on the message-passing stage pipeline is **bit-identical
//!   across repeats**, including the retrieval plane's counters — the
//!   stages exchange real messages (bounded mailboxes, oneshot replies,
//!   coalesced write batches), so this pins that no interleaving leaks
//!   into observable state;
//! * batch-1 default runs reproduce the golden fingerprint captured on the
//!   pre-actor synchronous loop, i.e. the re-architecture changed the
//!   execution substrate and nothing else;
//! * the mid-minute re-split fires on a **retrieval-overhead spike** (a
//!   degraded cache plane inflating AC service times), not just on the
//!   backlog drain-rate trigger it shipped with, and the re-split
//!   measurably recovers SLO violations on the spike window.

use argus::cachestore::NetworkRegime;
use argus::core::{Policy, RunConfig, RunOutcome};
use argus::models::{GpuArch, Strategy};
use argus::workload::{steady, twitter_like};

fn cfg(policy: Policy, trace: argus::workload::Trace, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(policy, trace).with_seed(seed);
    c.classifier_train_size = 800;
    c
}

/// Full-outcome equality: every counter, every per-minute record, every
/// bit of the float aggregates.
fn assert_identical(a: &RunOutcome, b: &RunOutcome, what: &str) {
    assert_eq!(a.totals, b.totals, "{what}: totals diverged");
    assert_eq!(a.minutes, b.minutes, "{what}: minute records diverged");
    assert_eq!(
        a.level_completions, b.level_completions,
        "{what}: level completions diverged"
    );
    assert_eq!(
        a.quality_samples, b.quality_samples,
        "{what}: quality samples diverged"
    );
    assert_eq!(a.pools, b.pools, "{what}: pool stats diverged");
    assert_eq!(
        a.retrieval.per_level, b.retrieval.per_level,
        "{what}: retrieval outcomes diverged"
    );
    assert_eq!(
        (
            a.retrieval.lookups,
            a.retrieval.inserts,
            a.retrieval.replica_writes
        ),
        (
            b.retrieval.lookups,
            b.retrieval.inserts,
            b.retrieval.replica_writes
        ),
        "{what}: retrieval counters diverged"
    );
    assert_eq!(
        a.retrieval.mean_latency.to_bits(),
        b.retrieval.mean_latency.to_bits(),
        "{what}: retrieval latency aggregation diverged"
    );
    assert_eq!(a.switches, b.switches, "{what}: switch counts diverged");
    assert_eq!(
        a.makespan_secs.to_bits(),
        b.makespan_secs.to_bits(),
        "{what}: makespan diverged"
    );
}

#[test]
fn actor_plane_seeded_repeats_are_bit_identical() {
    // One configuration per retrieval plane, so every cache-stage variant
    // (flat scan, shared LSH, sharded with replication) crosses the
    // mailbox boundary deterministically.
    let trace = twitter_like(19, 8);
    type Wire = fn(RunConfig) -> RunConfig;
    let variants: [(&str, Wire); 3] = [
        ("flat", |c| c),
        ("lsh", RunConfig::with_lsh_cache),
        ("sharded", |c| c.with_sharded_cache(4, 2)),
    ];
    for (name, wire) in variants {
        let a = wire(cfg(Policy::Argus, trace.clone(), 19)).run();
        let b = wire(cfg(Policy::Argus, trace.clone(), 19)).run();
        assert_identical(&a, &b, name);
    }
}

#[test]
fn actor_plane_reproduces_the_pre_actor_golden() {
    // The Argus golden from `tests/capacity_model.rs`, captured on the
    // synchronous tick loop before the actor re-architecture. Asserted
    // here independently: the stage decomposition (planner/cache-plane/
    // metrics mailboxes, coalesced batches, inline fast path) must not
    // move a single bit of the observable outcome.
    let out = cfg(Policy::Argus, twitter_like(11, 6), 11).run();
    assert_eq!(out.totals.offered, 609);
    assert_eq!(out.totals.completed, 609);
    assert_eq!(out.totals.violations, 234);
    assert_eq!(out.totals.in_slo, 375);
    assert_eq!(out.totals.model_loads, 8);
    assert_eq!(out.totals.quality_sum.to_bits(), 0x40bd510e9b2f72d6);
    assert_eq!(
        out.totals.relative_quality_sum.to_bits(),
        0x4076533a7c3778ed
    );
    assert_eq!(out.makespan_secs.to_bits(), 0x4076fde2ad3e920c);
}

/// A mixed fleet with the V100 pool pinned to SM: the AC (A100) pool pays
/// retrieval on every job, the SM pool does not — so a cache-plane
/// degradation inflates service times on exactly one pool while the
/// other keeps its planned capacity. Congestion starts 15 s into
/// minute 5 — after the allocator priced retrieval at the healthy EWMA —
/// and lifts at minute 12.
fn spike_cfg(qpm: f64, congested: bool, resplit: bool) -> RunConfig {
    let mut c = cfg(Policy::Argus, steady(qpm, 18), 21)
        .with_heterogeneous_pools(vec![(GpuArch::A100, 5), (GpuArch::V100, 3)])
        .with_pool_strategy(GpuArch::V100, Strategy::Sm)
        // Pin the strategy so the switcher cannot leave AC mode — the
        // spike must be absorbed by re-splitting, not by abandoning the
        // cache (which is the §4.6 escape hatch, tested elsewhere).
        .without_strategy_switch();
    if congested {
        c = c.with_network_events(vec![
            (5.25, NetworkRegime::Congested),
            (12.0, NetworkRegime::Normal),
        ]);
    }
    if resplit {
        c = c.with_demand_resplit();
    }
    c
}

#[test]
fn retrieval_spike_triggers_the_midminute_resplit() {
    // 130 QPM sits inside the fleet's healthy envelope (the no-congestion
    // control below finishes with zero violations and never re-splits),
    // so every re-split the congested run fires is attributable to the
    // retrieval-overhead trigger, not the backlog drain-rate one.
    let spiked = spike_cfg(130.0, true, true).run();
    assert!(
        spiked.demand_resplits > 0,
        "a congested cache plane must trigger the overhead-spike re-split"
    );
    let healthy = spike_cfg(130.0, false, true).run();
    assert_eq!(
        healthy.demand_resplits, 0,
        "healthy-network run must not re-split"
    );
    assert_eq!(
        healthy.totals.violations, 0,
        "control must hold the SLO without congestion"
    );
}

#[test]
fn retrieval_spike_resplit_recovers_violations() {
    // 115 QPM leaves the SM pool real headroom during the congestion
    // window, so re-deriving the split at the spiked EWMA shifts load off
    // the degraded AC pool instead of merely re-solving a saturated plan.
    let plain = spike_cfg(115.0, true, false).run();
    let resplit = spike_cfg(115.0, true, true).run();
    assert_eq!(plain.demand_resplits, 0);
    assert!(resplit.demand_resplits > 0);
    assert_eq!(
        plain.totals.completed, resplit.totals.completed,
        "both runs must serve the full trace"
    );
    assert!(
        resplit.totals.slo_violation_ratio() < 0.75 * plain.totals.slo_violation_ratio(),
        "shifting load off the degraded AC pool should recover violations: \
         {:.3} (re-split) vs {:.3} (stale plan)",
        resplit.totals.slo_violation_ratio(),
        plain.totals.slo_violation_ratio()
    );
}

#[test]
fn resplit_runs_with_spike_trigger_are_bit_deterministic() {
    let a = spike_cfg(130.0, true, true).run();
    let b = spike_cfg(130.0, true, true).run();
    assert_eq!(a.demand_resplits, b.demand_resplits);
    assert_identical(&a, &b, "spike re-split");
}
