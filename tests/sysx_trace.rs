//! End-to-end runs over the SysX-shaped production trace (§5.1), which
//! until now was generated but never exercised by a test, plus the
//! heterogeneous-fleet determinism contract.
//!
//! SysX is the jittery trace: a mean-reverting walk with sustained
//! high-load eras whose peaks exceed the all-SD-XL capacity. The paper's
//! Fig. 16 finding this pins: Argus beats the static baselines on it —
//! far fewer SLO violations than the always-accurate Clipper-HA, and
//! better quality than the always-fast Clipper-HT, while serving
//! comparable or higher throughput.

use argus::core::{Policy, RunConfig, RunOutcome};
use argus::models::GpuArch;
use argus::workload::sysx_like;

fn run(policy: Policy, seed: u64) -> RunOutcome {
    let mut cfg = RunConfig::new(policy, sysx_like(31, 30)).with_seed(seed);
    cfg.classifier_train_size = 1500;
    cfg.run()
}

#[test]
fn argus_beats_static_baselines_on_sysx() {
    let argus = run(Policy::Argus, 9);
    let ha = run(Policy::ClipperHa, 9);
    let ht = run(Policy::ClipperHt, 9);

    // Against the accuracy-pinned static baseline: an order fewer
    // violations under SysX's high-load eras.
    assert!(
        argus.totals.slo_violation_ratio() < 0.5 * ha.totals.slo_violation_ratio(),
        "Argus {:.3} vs Clipper-HA {:.3}",
        argus.totals.slo_violation_ratio(),
        ha.totals.slo_violation_ratio()
    );
    // Against the throughput-pinned static baseline: clearly better
    // quality at comparable served volume.
    assert!(
        argus.totals.effective_accuracy() > ht.totals.effective_accuracy() + 1.0,
        "Argus {:.2} vs Clipper-HT {:.2}",
        argus.totals.effective_accuracy(),
        ht.totals.effective_accuracy()
    );
    assert!(
        argus.totals.completed as f64 > 0.9 * ht.totals.completed as f64,
        "Argus {} vs Clipper-HT {}",
        argus.totals.completed,
        ht.totals.completed
    );
}

#[test]
fn sysx_runs_are_deterministic() {
    let a = run(Policy::Argus, 4);
    let b = run(Policy::Argus, 4);
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.minutes, b.minutes);
    assert_eq!(a.level_completions, b.level_completions);
}

#[test]
fn heterogeneous_pool_run_is_bit_deterministic_on_sysx() {
    let run = || {
        let mut cfg = RunConfig::new(Policy::Argus, sysx_like(33, 20))
            .with_heterogeneous_pools(vec![
                (GpuArch::A100, 4),
                (GpuArch::A10G, 2),
                (GpuArch::V100, 2),
            ])
            .with_seed(17);
        cfg.classifier_train_size = 1200;
        cfg.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.minutes, b.minutes);
    assert_eq!(a.level_completions, b.level_completions);
    assert_eq!(a.quality_samples, b.quality_samples);
    assert_eq!(a.switches, b.switches);
    // And the run actually serves: the mixed fleet absorbs most of the
    // SysX load by approximating deeper on the slower pools.
    assert!(
        a.totals.completed as f64 > 0.7 * a.totals.offered as f64,
        "{:?}",
        a.totals
    );
}
