//! The telemetry plane's contract (DESIGN.md §12):
//!
//! * telemetry **off** (the default) is bit-identical to the pre-plane
//!   tree, pinned by the PR 8 golden fingerprint;
//! * telemetry **on** does not perturb the simulation: results match the
//!   telemetry-off run bit for bit;
//! * telemetry **on** is itself bit-deterministic across all three
//!   actor-pacing modes, down to the exported JSONL/Chrome-trace bytes;
//! * the timeline reconciles with the run totals, spans tell a
//!   well-formed lifecycle story, sampling keeps 1-in-N jobs, and the
//!   stage profiles obey the envelope-accounting identities.

use argus::core::{ActorPacing, Policy, RunConfig, RunOutcome, SpanKind, TelemetryConfig};
use argus::obs::{validate_chrome_trace, validate_jsonl};
use argus::workload::twitter_like;

fn cfg(seed: u64, minutes: usize) -> RunConfig {
    let mut c = RunConfig::new(Policy::Argus, twitter_like(seed, minutes)).with_seed(seed);
    c.classifier_train_size = 800;
    c
}

fn assert_results_identical(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.totals, b.totals, "{label}: totals");
    assert_eq!(a.minutes, b.minutes, "{label}: minutes");
    assert_eq!(a.level_completions, b.level_completions, "{label}: levels");
    assert_eq!(a.fleet, b.fleet, "{label}: fleet stats");
    assert_eq!(a.cost, b.cost, "{label}: cost report");
    assert_eq!(
        a.makespan_secs.to_bits(),
        b.makespan_secs.to_bits(),
        "{label}: makespan"
    );
}

#[test]
fn telemetry_off_matches_pr8_golden() {
    // The Argus golden from `tests/fleet.rs`: with no `with_telemetry`
    // the recorder is never built, and the run must not move a single
    // RNG draw or event.
    let out = cfg(11, 6).run();
    assert_eq!(out.totals.offered, 609);
    assert_eq!(out.totals.completed, 609);
    assert_eq!(out.totals.violations, 234);
    assert_eq!(out.totals.in_slo, 375);
    assert_eq!(out.totals.model_loads, 8);
    assert_eq!(out.totals.quality_sum.to_bits(), 0x40bd510e9b2f72d6);
    assert_eq!(
        out.totals.relative_quality_sum.to_bits(),
        0x4076533a7c3778ed
    );
    assert_eq!(out.makespan_secs.to_bits(), 0x4076fde2ad3e920c);
    // And the outcome carries no telemetry artifacts at all.
    assert!(out.timeline.is_none());
    assert!(out.spans.is_none());
    assert!(out.stage_profiles.is_empty());
}

#[test]
fn telemetry_on_does_not_perturb_the_simulation() {
    let off = cfg(11, 6).run();
    let on = cfg(11, 6).with_telemetry(TelemetryConfig::full()).run();
    assert_results_identical(&off, &on, "on-vs-off");
    assert!(on.timeline.is_some());
    assert!(on.spans.is_some());
    assert_eq!(on.stage_profiles.len(), 4);
}

#[test]
fn telemetry_is_bit_deterministic_across_actor_pacing_modes() {
    let run = |pacing| {
        cfg(13, 8)
            .with_telemetry(TelemetryConfig::full())
            .with_actor_pacing(pacing)
            .run()
    };
    let auto = run(ActorPacing::Auto);
    let inline = run(ActorPacing::SingleCoreInline);
    let threaded = run(ActorPacing::Threaded);
    for (other, label) in [(&inline, "inline"), (&threaded, "threaded")] {
        assert_results_identical(&auto, other, label);
        // The telemetry artifacts themselves must not depend on pacing:
        // `RunOutcome::timeline` compares sample by sample, and the
        // exported documents byte for byte (spans, ticks, profiles —
        // everything the exporters serialize).
        assert_eq!(auto.timeline, other.timeline, "{label}: timeline");
        let (a, b) = (auto.spans.as_ref().unwrap(), other.spans.as_ref().unwrap());
        assert_eq!(a.events, b.events, "{label}: span events");
        assert_eq!(
            auto.stage_profiles, other.stage_profiles,
            "{label}: profiles"
        );
        assert_eq!(
            auto.telemetry_jsonl(),
            other.telemetry_jsonl(),
            "{label}: jsonl bytes"
        );
        assert_eq!(
            auto.chrome_trace(),
            other.chrome_trace(),
            "{label}: chrome-trace bytes"
        );
    }
}

#[test]
fn timeline_reconciles_with_run_totals() {
    let out = cfg(11, 6).with_telemetry(TelemetryConfig::full()).run();
    let tl = out.timeline.as_ref().unwrap();
    // One sample per allocator tick, minutes strictly increasing.
    assert_eq!(tl.samples.len(), 6);
    for (i, s) in tl.samples.iter().enumerate() {
        assert_eq!(s.minute as usize, i + 1);
    }
    assert_eq!(tl.dropped, 0);
    // Counters are cumulative: the last sample is a lower bound on the
    // totals (jobs finishing after the final tick are not sampled), and
    // every series is monotone.
    let completions = tl.counter("completions").unwrap();
    assert!(completions.windows(2).all(|w| w[0] <= w[1]));
    assert!(*completions.last().unwrap() <= out.totals.completed);
    // Arrivals keep landing between the last tick and teardown, so the
    // final sample is a strict-positive lower bound on the offered total.
    let arrivals = tl.counter("arrivals").unwrap();
    assert!(*arrivals.last().unwrap() > 0);
    assert!(*arrivals.last().unwrap() <= out.totals.offered);
    // The run-total histograms saw every completion.
    let e2e = tl.total_hist("e2e_latency_secs").unwrap();
    assert_eq!(e2e.count(), out.totals.completed);
    assert!(e2e.percentile(0.5).is_some());
    // The default path keeps a static 8-worker fleet.
    let alive = tl.gauge("fleet_alive").unwrap();
    assert!(alive.iter().all(|&v| v == 8.0), "{alive:?}");
}

#[test]
fn spans_tell_a_well_formed_lifecycle_story() {
    let out = cfg(11, 6).with_telemetry(TelemetryConfig::full()).run();
    let spans = out.spans.as_ref().unwrap();
    assert_eq!(spans.dropped, 0);
    // Group by job: full sampling records every offered job.
    let mut per_job: Vec<Vec<&argus::core::SpanEvent>> =
        vec![Vec::new(); out.totals.offered as usize];
    for e in &spans.events {
        per_job[e.job as usize].push(e);
    }
    let mut terminals = 0u64;
    for (job, evs) in per_job.iter().enumerate() {
        assert!(!evs.is_empty(), "job {job} recorded no spans");
        // Events are recorded in sim-time order...
        assert!(evs.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        // ...starting at arrival and ending in exactly one terminal.
        assert_eq!(evs[0].kind, SpanKind::Arrive, "job {job}");
        let n_term = evs.iter().filter(|e| e.kind.is_terminal()).count();
        assert_eq!(n_term, 1, "job {job}: {evs:?}");
        assert!(evs.last().unwrap().kind.is_terminal(), "job {job}");
        terminals += 1;
        // A dispatch names its worker, pool, batch and level.
        for e in evs.iter().filter(|e| e.kind == SpanKind::Dispatch) {
            assert!(e.level.is_some() && e.pool.is_some(), "job {job}");
            assert_ne!(e.worker, argus::obs::NO_WORKER, "job {job}");
            assert_ne!(e.batch, argus::obs::NO_BATCH, "job {job}");
        }
    }
    assert_eq!(terminals, out.totals.offered);
    // Completions + violations among terminals match the totals.
    let completes = spans
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Complete)
        .count() as u64;
    let violations = spans
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Violation)
        .count() as u64;
    assert_eq!(completes + violations, out.totals.completed);
    assert_eq!(violations, out.totals.violations);
}

#[test]
fn sampling_keeps_one_in_n_jobs() {
    let full = cfg(11, 6).with_telemetry(TelemetryConfig::full()).run();
    let sampled = cfg(11, 6).with_telemetry(TelemetryConfig::sampled(8)).run();
    // Sampling is a pure filter: the simulation is untouched...
    assert_results_identical(&full, &sampled, "sampled-vs-full");
    // ...and the sampled log holds exactly the `job % 8 == 0` subset.
    let keep: Vec<_> = full
        .spans
        .as_ref()
        .unwrap()
        .events
        .iter()
        .filter(|e| e.job % 8 == 0)
        .cloned()
        .collect();
    assert_eq!(sampled.spans.as_ref().unwrap().events, keep);
    assert_eq!(sampled.spans.as_ref().unwrap().sample_every, 8);
    // Timeline stays full-fidelity either way (it is O(minutes)).
    assert_eq!(full.timeline, sampled.timeline);
    // And `timeline_only` drops spans entirely.
    let tl_only = cfg(11, 6)
        .with_telemetry(TelemetryConfig::timeline_only())
        .run();
    assert!(tl_only.spans.is_none());
    assert_eq!(tl_only.timeline, full.timeline);
}

#[test]
fn exports_validate_and_roundtrip_to_disk() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target");
    let jsonl_path = dir.join("obs_test.telemetry.jsonl");
    let trace_path = dir.join("obs_test.trace.json");
    let out = cfg(11, 6)
        .with_telemetry(
            TelemetryConfig::sampled(4)
                .with_jsonl(&jsonl_path)
                .with_chrome_trace(&trace_path),
        )
        .run();
    let jsonl = out.telemetry_jsonl();
    let summary = validate_jsonl(&jsonl).expect("jsonl validates");
    assert_eq!(
        summary.spans,
        out.spans.as_ref().unwrap().events.len() as u64
    );
    assert_eq!(
        summary.ticks,
        out.timeline.as_ref().unwrap().samples.len() as u64
    );
    assert_eq!(summary.stages, 4);
    validate_chrome_trace(&out.chrome_trace()).expect("chrome trace validates");
    // Teardown wrote the same bytes the in-memory exporters produce.
    assert_eq!(std::fs::read_to_string(&jsonl_path).unwrap(), jsonl);
    assert_eq!(
        std::fs::read_to_string(&trace_path).unwrap(),
        out.chrome_trace()
    );
    let _ = std::fs::remove_file(jsonl_path);
    let _ = std::fs::remove_file(trace_path);
}

#[test]
fn stage_profiles_obey_envelope_accounting() {
    let out = cfg(11, 6).with_telemetry(TelemetryConfig::full()).run();
    let by_name = |n: &str| {
        out.stage_profiles
            .iter()
            .find(|p| p.stage == n)
            .unwrap_or_else(|| panic!("missing stage {n}"))
    };
    let (planner, cache, metrics, fleet) = (
        by_name("planner"),
        by_name("cache-plane"),
        by_name("metrics"),
        by_name("fleet"),
    );
    for p in &out.stage_profiles {
        assert!(p.sent > 0, "{}: no traffic", p.stage);
        assert!(p.mailbox_hwm >= 1 && p.mailbox_hwm <= 4096, "{}", p.stage);
        assert!(p.counters.processed > 0, "{}", p.stage);
    }
    // Planner and fleet receive no `Batch` envelopes: one send per
    // logical message.
    assert_eq!(planner.counters.batches, 0);
    assert_eq!(fleet.counters.batches, 0);
    assert_eq!(planner.sent, planner.counters.processed);
    assert_eq!(fleet.sent, fleet.counters.processed);
    // Metrics and cache-plane traffic is either a coalesced `Batch`
    // flush or a rendezvous request — nothing else crosses the mailbox.
    assert_eq!(
        metrics.sent,
        metrics.counters.batches + metrics.counters.replies
    );
    assert_eq!(cache.sent, cache.counters.batches + cache.counters.replies);
    // The metrics stage replies exactly once: at Finish.
    assert_eq!(metrics.counters.replies, 1);
    // Every cache retrieval/probe/drain replied; each unpacked batch
    // carried at least one message.
    assert!(cache.counters.replies > 0);
    assert!(cache.counters.max_batch_len >= 1);
    assert!(metrics.counters.max_batch_len >= 1);
    assert!(metrics.counters.max_batch_len <= 64, "SEND_BATCH cap");
}
