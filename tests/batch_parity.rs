//! Batched dispatch (Obs. 5) against the serving-pipeline refactor:
//!
//! * batch-1 runs are bit-identical to the default (unbatched) path for
//!   every policy — the refactor's compatibility contract;
//! * the built-in pipelines plugged through the
//!   `RunConfig::with_policy_pipeline` escape hatch reproduce the built-in
//!   policy behaviour bit-for-bit;
//! * per-GPU-second throughput under saturation is monotone in the batch
//!   bound and improves over batch-1 where the Obs. 5 model predicts a
//!   gain (memory-amortizing small variants), while staying flat-to-
//!   marginal on the compute-bound SD-XL UNet;
//! * SLO behaviour at saturation does not regress with batching on.

use argus::core::{
    ArgusPolicy, ClipperPolicy, NirvanaPolicy, PacPolicy, Policy, ProteusPolicy, RunConfig,
    RunOutcome, ServingPolicy, SommelierPolicy,
};
use argus::workload::{steady, twitter_like, Trace};

fn cfg(policy: Policy, trace: Trace, seed: u64) -> RunConfig {
    let mut c = RunConfig::new(policy, trace).with_seed(seed);
    c.classifier_train_size = 800;
    c
}

fn assert_bit_identical(a: &RunOutcome, b: &RunOutcome, label: &str) {
    assert_eq!(a.totals, b.totals, "{label}: totals diverged");
    assert_eq!(a.minutes, b.minutes, "{label}: minute records diverged");
    assert_eq!(
        a.level_completions, b.level_completions,
        "{label}: level completions diverged"
    );
    assert_eq!(
        a.quality_samples, b.quality_samples,
        "{label}: quality samples diverged"
    );
    assert_eq!(a.switches, b.switches, "{label}: switch counts diverged");
}

#[test]
fn batch_one_is_bit_identical_for_every_policy() {
    let trace = twitter_like(11, 6);
    for policy in Policy::ALL {
        let default = cfg(policy, trace.clone(), 11).run();
        let batch1 = cfg(policy, trace.clone(), 11).with_batching(1).run();
        assert_bit_identical(&default, &batch1, policy.name());
    }
}

#[test]
fn builtin_pipelines_via_escape_hatch_are_bit_identical() {
    let trace = twitter_like(3, 6);
    let pipelines: Vec<(Policy, Box<dyn ServingPolicy>)> = vec![
        (Policy::Argus, Box::new(ArgusPolicy)),
        (Policy::Pac, Box::new(PacPolicy)),
        (Policy::Proteus, Box::new(ProteusPolicy)),
        (Policy::Sommelier, Box::new(SommelierPolicy)),
        (Policy::Nirvana, Box::new(NirvanaPolicy)),
        (
            Policy::ClipperHa,
            Box::new(ClipperPolicy::highest_accuracy()),
        ),
        (
            Policy::ClipperHt,
            Box::new(ClipperPolicy::highest_throughput()),
        ),
    ];
    for (policy, pipeline) in pipelines {
        let builtin = cfg(policy, trace.clone(), 3).run();
        let custom = cfg(policy, trace.clone(), 3)
            .with_policy_pipeline(pipeline)
            .run();
        assert_bit_identical(&builtin, &custom, policy.name());
    }
}

/// Completed jobs per GPU-second over the whole (post-drain) run.
fn gpu_second_throughput(out: &RunOutcome, workers: f64) -> f64 {
    out.totals.completed as f64 / (out.makespan_secs * workers)
}

#[test]
fn saturated_throughput_is_monotone_in_batch_bound() {
    // Obs. 5: Tiny-SD amortizes its weight traffic and fixed pass
    // overhead, so a saturated all-Tiny cluster drains its backlog no
    // slower — and measurably faster — as the batch bound grows.
    let run = |b: u32| {
        cfg(Policy::ClipperHt, steady(400.0, 8), 5)
            .with_batching(b)
            .run()
    };
    let mut last = gpu_second_throughput(&run(1), 8.0);
    for b in [2u32, 4, 8] {
        let out = run(b);
        let tput = gpu_second_throughput(&out, 8.0);
        assert!(
            tput >= last * (1.0 - 1e-9),
            "throughput fell raising B to {b}: {tput:.5} < {last:.5}"
        );
        last = tput;
    }
}

#[test]
fn batching_improves_tiny_sd_throughput_per_the_obs5_model() {
    // The Obs. 5 model predicts a ~15-25% pass-level speed-up for Tiny-SD
    // at batch 4; the system-level gain under saturation must be a solid
    // fraction of that (batches only form while queues are deep).
    let base = cfg(Policy::ClipperHt, steady(400.0, 8), 5)
        .with_batching(1)
        .run();
    let batched = cfg(Policy::ClipperHt, steady(400.0, 8), 5)
        .with_batching(4)
        .run();
    assert_eq!(base.totals.completed, batched.totals.completed);
    let t1 = gpu_second_throughput(&base, 8.0);
    let t4 = gpu_second_throughput(&batched, 8.0);
    assert!(t4 > t1 * 1.08, "batch-4 {t4:.5} vs batch-1 {t1:.5}");
}

#[test]
fn compute_bound_ac_ladder_gains_little_from_batching() {
    // The flip side of Obs. 5 (and the reason Argus serves batch-1): the
    // SD-XL UNet is compute-bound and any AC member can miss the cache
    // into a full generation, so the dispatcher budgets AC batches at the
    // miss cost and the ladder's batched throughput stays within a few
    // percent of batch-1 — no regression, no miracle.
    let base = cfg(Policy::Nirvana, steady(300.0, 6), 9).run();
    let batched = cfg(Policy::Nirvana, steady(300.0, 6), 9)
        .with_batching(8)
        .run();
    assert_eq!(base.totals.completed, batched.totals.completed);
    let t1 = gpu_second_throughput(&base, 8.0);
    let t8 = gpu_second_throughput(&batched, 8.0);
    assert!(t8 >= t1 * 0.999, "batched AC regressed: {t8:.5} vs {t1:.5}");
    assert!(
        t8 <= t1 * 1.05,
        "AC ladder cannot batch this well: {t8:.5} vs {t1:.5}"
    );
}

#[test]
fn slo_behavior_at_saturation_does_not_regress_with_batching() {
    // Batches form only while queues are deep (jobs already far past the
    // SLO), and the dispatcher caps the batch where latency inflation
    // would eat the tail budget — so the violation ratio at saturation
    // must not get worse than unbatched serving.
    let trace = twitter_like(11, 12).normalize_to(150.0, 340.0);
    for policy in [Policy::Argus, Policy::ClipperHt, Policy::Proteus] {
        let base = cfg(policy, trace.clone(), 11).run();
        let batched = cfg(policy, trace.clone(), 11).with_batching(4).run();
        assert!(
            batched.totals.completed >= base.totals.completed,
            "{policy}: batched completed fewer jobs"
        );
        assert!(
            batched.totals.slo_violation_ratio() <= base.totals.slo_violation_ratio() + 0.02,
            "{policy}: batched violations {:.3} vs {:.3}",
            batched.totals.slo_violation_ratio(),
            base.totals.slo_violation_ratio()
        );
    }
}
