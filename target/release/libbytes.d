/root/repo/target/release/libbytes.rlib: /root/repo/shims/bytes/src/lib.rs
