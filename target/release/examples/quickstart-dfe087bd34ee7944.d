/root/repo/target/release/examples/quickstart-dfe087bd34ee7944.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-dfe087bd34ee7944: examples/quickstart.rs

examples/quickstart.rs:
