/root/repo/target/release/examples/production_trace-02c90275f2be1ec0.d: examples/production_trace.rs

/root/repo/target/release/examples/production_trace-02c90275f2be1ec0: examples/production_trace.rs

examples/production_trace.rs:
