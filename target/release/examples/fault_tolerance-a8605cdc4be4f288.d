/root/repo/target/release/examples/fault_tolerance-a8605cdc4be4f288.d: examples/fault_tolerance.rs

/root/repo/target/release/examples/fault_tolerance-a8605cdc4be4f288: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
