/root/repo/target/release/examples/capacity_planning-54f71eda348c1e82.d: examples/capacity_planning.rs

/root/repo/target/release/examples/capacity_planning-54f71eda348c1e82: examples/capacity_planning.rs

examples/capacity_planning.rs:
