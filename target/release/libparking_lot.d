/root/repo/target/release/libparking_lot.rlib: /root/repo/shims/parking_lot/src/lib.rs
