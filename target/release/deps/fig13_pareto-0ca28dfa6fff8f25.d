/root/repo/target/release/deps/fig13_pareto-0ca28dfa6fff8f25.d: crates/bench/benches/fig13_pareto.rs

/root/repo/target/release/deps/fig13_pareto-0ca28dfa6fff8f25: crates/bench/benches/fig13_pareto.rs

crates/bench/benches/fig13_pareto.rs:
