/root/repo/target/release/deps/argus_quality-6512485f0b78a4e0.d: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

/root/repo/target/release/deps/argus_quality-6512485f0b78a4e0: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

crates/quality/src/lib.rs:
crates/quality/src/degradation.rs:
crates/quality/src/depth.rs:
crates/quality/src/oracle.rs:
crates/quality/src/rater.rs:
