/root/repo/target/release/deps/parking_lot-2dbc4c16a6871156.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-2dbc4c16a6871156: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
