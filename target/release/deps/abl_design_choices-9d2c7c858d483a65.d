/root/repo/target/release/deps/abl_design_choices-9d2c7c858d483a65.d: crates/bench/benches/abl_design_choices.rs

/root/repo/target/release/deps/abl_design_choices-9d2c7c858d483a65: crates/bench/benches/abl_design_choices.rs

crates/bench/benches/abl_design_choices.rs:
