/root/repo/target/release/deps/argus_cachestore-abb14f18d66b1f0f.d: crates/cachestore/src/lib.rs

/root/repo/target/release/deps/libargus_cachestore-abb14f18d66b1f0f.rlib: crates/cachestore/src/lib.rs

/root/repo/target/release/deps/libargus_cachestore-abb14f18d66b1f0f.rmeta: crates/cachestore/src/lib.rs

crates/cachestore/src/lib.rs:
