/root/repo/target/release/deps/fig19_classifier_quality-189e35dc4cc803aa.d: crates/bench/benches/fig19_classifier_quality.rs

/root/repo/target/release/deps/fig19_classifier_quality-189e35dc4cc803aa: crates/bench/benches/fig19_classifier_quality.rs

crates/bench/benches/fig19_classifier_quality.rs:
