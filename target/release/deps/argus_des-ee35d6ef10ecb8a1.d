/root/repo/target/release/deps/argus_des-ee35d6ef10ecb8a1.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/release/deps/libargus_des-ee35d6ef10ecb8a1.rlib: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/release/deps/libargus_des-ee35d6ef10ecb8a1.rmeta: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
