/root/repo/target/release/deps/tab03_flops-e32e3fdca694e6ad.d: crates/bench/benches/tab03_flops.rs

/root/repo/target/release/deps/tab03_flops-e32e3fdca694e6ad: crates/bench/benches/tab03_flops.rs

crates/bench/benches/tab03_flops.rs:
