/root/repo/target/release/deps/determinism-907eacf3dc8e5b28.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-907eacf3dc8e5b28: tests/determinism.rs

tests/determinism.rs:
