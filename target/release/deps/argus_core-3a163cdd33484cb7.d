/root/repo/target/release/deps/argus_core-3a163cdd33484cb7.d: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs

/root/repo/target/release/deps/argus_core-3a163cdd33484cb7: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/metrics.rs:
crates/core/src/oda.rs:
crates/core/src/policy.rs:
crates/core/src/predictor.rs:
crates/core/src/scheduler.rs:
crates/core/src/solver.rs:
crates/core/src/switcher.rs:
crates/core/src/system.rs:
