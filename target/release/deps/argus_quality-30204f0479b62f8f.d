/root/repo/target/release/deps/argus_quality-30204f0479b62f8f.d: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

/root/repo/target/release/deps/libargus_quality-30204f0479b62f8f.rlib: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

/root/repo/target/release/deps/libargus_quality-30204f0479b62f8f.rmeta: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

crates/quality/src/lib.rs:
crates/quality/src/degradation.rs:
crates/quality/src/depth.rs:
crates/quality/src/oracle.rs:
crates/quality/src/rater.rs:
