/root/repo/target/release/deps/argus_models-ae8382fb9c7f9140.d: crates/models/src/lib.rs crates/models/src/ac.rs crates/models/src/approx.rs crates/models/src/batching.rs crates/models/src/component.rs crates/models/src/extended.rs crates/models/src/gpu.rs crates/models/src/latency.rs crates/models/src/nondm.rs crates/models/src/roofline.rs crates/models/src/variant.rs

/root/repo/target/release/deps/libargus_models-ae8382fb9c7f9140.rlib: crates/models/src/lib.rs crates/models/src/ac.rs crates/models/src/approx.rs crates/models/src/batching.rs crates/models/src/component.rs crates/models/src/extended.rs crates/models/src/gpu.rs crates/models/src/latency.rs crates/models/src/nondm.rs crates/models/src/roofline.rs crates/models/src/variant.rs

/root/repo/target/release/deps/libargus_models-ae8382fb9c7f9140.rmeta: crates/models/src/lib.rs crates/models/src/ac.rs crates/models/src/approx.rs crates/models/src/batching.rs crates/models/src/component.rs crates/models/src/extended.rs crates/models/src/gpu.rs crates/models/src/latency.rs crates/models/src/nondm.rs crates/models/src/roofline.rs crates/models/src/variant.rs

crates/models/src/lib.rs:
crates/models/src/ac.rs:
crates/models/src/approx.rs:
crates/models/src/batching.rs:
crates/models/src/component.rs:
crates/models/src/extended.rs:
crates/models/src/gpu.rs:
crates/models/src/latency.rs:
crates/models/src/nondm.rs:
crates/models/src/roofline.rs:
crates/models/src/variant.rs:
