/root/repo/target/release/deps/micro-cccf87945a8df90d.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-cccf87945a8df90d: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
