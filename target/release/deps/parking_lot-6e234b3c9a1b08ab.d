/root/repo/target/release/deps/parking_lot-6e234b3c9a1b08ab.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6e234b3c9a1b08ab.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6e234b3c9a1b08ab.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
