/root/repo/target/release/deps/criterion-839708d9f298dab6.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-839708d9f298dab6: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
