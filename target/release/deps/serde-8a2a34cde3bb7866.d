/root/repo/target/release/deps/serde-8a2a34cde3bb7866.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/serde-8a2a34cde3bb7866: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
