/root/repo/target/release/deps/tab01_system_matrix-b41f06ef2cf4e155.d: crates/bench/benches/tab01_system_matrix.rs

/root/repo/target/release/deps/tab01_system_matrix-b41f06ef2cf4e155: crates/bench/benches/tab01_system_matrix.rs

crates/bench/benches/tab01_system_matrix.rs:
