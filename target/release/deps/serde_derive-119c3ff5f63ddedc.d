/root/repo/target/release/deps/serde_derive-119c3ff5f63ddedc.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-119c3ff5f63ddedc: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
