/root/repo/target/release/deps/fig20_faults-b0cc3c1623982ff1.d: crates/bench/benches/fig20_faults.rs

/root/repo/target/release/deps/fig20_faults-b0cc3c1623982ff1: crates/bench/benches/fig20_faults.rs

crates/bench/benches/fig20_faults.rs:
