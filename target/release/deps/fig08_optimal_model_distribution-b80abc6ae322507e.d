/root/repo/target/release/deps/fig08_optimal_model_distribution-b80abc6ae322507e.d: crates/bench/benches/fig08_optimal_model_distribution.rs

/root/repo/target/release/deps/fig08_optimal_model_distribution-b80abc6ae322507e: crates/bench/benches/fig08_optimal_model_distribution.rs

crates/bench/benches/fig08_optimal_model_distribution.rs:
