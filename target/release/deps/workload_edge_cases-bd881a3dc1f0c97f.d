/root/repo/target/release/deps/workload_edge_cases-bd881a3dc1f0c97f.d: tests/workload_edge_cases.rs

/root/repo/target/release/deps/workload_edge_cases-bd881a3dc1f0c97f: tests/workload_edge_cases.rs

tests/workload_edge_cases.rs:
