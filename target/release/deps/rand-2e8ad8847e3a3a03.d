/root/repo/target/release/deps/rand-2e8ad8847e3a3a03.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-2e8ad8847e3a3a03: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
