/root/repo/target/release/deps/argus_embed-6291c18bb3d7fc65.d: crates/embed/src/lib.rs

/root/repo/target/release/deps/libargus_embed-6291c18bb3d7fc65.rlib: crates/embed/src/lib.rs

/root/repo/target/release/deps/libargus_embed-6291c18bb3d7fc65.rmeta: crates/embed/src/lib.rs

crates/embed/src/lib.rs:
