/root/repo/target/release/deps/argus_vdb-1c45764190f3ebd7.d: crates/vdb/src/lib.rs

/root/repo/target/release/deps/argus_vdb-1c45764190f3ebd7: crates/vdb/src/lib.rs

crates/vdb/src/lib.rs:
