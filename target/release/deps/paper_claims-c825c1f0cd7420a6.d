/root/repo/target/release/deps/paper_claims-c825c1f0cd7420a6.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-c825c1f0cd7420a6: tests/paper_claims.rs

tests/paper_claims.rs:
