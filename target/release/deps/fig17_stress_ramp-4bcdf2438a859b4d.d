/root/repo/target/release/deps/fig17_stress_ramp-4bcdf2438a859b4d.d: crates/bench/benches/fig17_stress_ramp.rs

/root/repo/target/release/deps/fig17_stress_ramp-4bcdf2438a859b4d: crates/bench/benches/fig17_stress_ramp.rs

crates/bench/benches/fig17_stress_ramp.rs:
