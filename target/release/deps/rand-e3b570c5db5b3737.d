/root/repo/target/release/deps/rand-e3b570c5db5b3737.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-e3b570c5db5b3737.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-e3b570c5db5b3737.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
