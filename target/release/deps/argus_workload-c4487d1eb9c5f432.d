/root/repo/target/release/deps/argus_workload-c4487d1eb9c5f432.d: crates/workload/src/lib.rs

/root/repo/target/release/deps/argus_workload-c4487d1eb9c5f432: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
