/root/repo/target/release/deps/fig18_drift_retraining-a0c7a513657f0fc3.d: crates/bench/benches/fig18_drift_retraining.rs

/root/repo/target/release/deps/fig18_drift_retraining-a0c7a513657f0fc3: crates/bench/benches/fig18_drift_retraining.rs

crates/bench/benches/fig18_drift_retraining.rs:
