/root/repo/target/release/deps/s57_utilization-326510cde9933d30.d: crates/bench/benches/s57_utilization.rs

/root/repo/target/release/deps/s57_utilization-326510cde9933d30: crates/bench/benches/s57_utilization.rs

crates/bench/benches/s57_utilization.rs:
