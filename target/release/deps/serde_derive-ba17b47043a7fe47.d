/root/repo/target/release/deps/serde_derive-ba17b47043a7fe47.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-ba17b47043a7fe47.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
