/root/repo/target/release/deps/argus_cluster-b9022017024513e3.d: crates/cluster/src/lib.rs

/root/repo/target/release/deps/libargus_cluster-b9022017024513e3.rlib: crates/cluster/src/lib.rs

/root/repo/target/release/deps/libargus_cluster-b9022017024513e3.rmeta: crates/cluster/src/lib.rs

crates/cluster/src/lib.rs:
