/root/repo/target/release/deps/argus_classifier-51c5cd196288c7b4.d: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

/root/repo/target/release/deps/argus_classifier-51c5cd196288c7b4: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

crates/classifier/src/lib.rs:
crates/classifier/src/drift.rs:
crates/classifier/src/features.rs:
crates/classifier/src/model.rs:
