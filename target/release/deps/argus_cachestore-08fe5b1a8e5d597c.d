/root/repo/target/release/deps/argus_cachestore-08fe5b1a8e5d597c.d: crates/cachestore/src/lib.rs

/root/repo/target/release/deps/argus_cachestore-08fe5b1a8e5d597c: crates/cachestore/src/lib.rs

crates/cachestore/src/lib.rs:
