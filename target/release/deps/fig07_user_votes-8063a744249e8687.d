/root/repo/target/release/deps/fig07_user_votes-8063a744249e8687.d: crates/bench/benches/fig07_user_votes.rs

/root/repo/target/release/deps/fig07_user_votes-8063a744249e8687: crates/bench/benches/fig07_user_votes.rs

crates/bench/benches/fig07_user_votes.rs:
