/root/repo/target/release/deps/tmp_probe-c9318cc3bafe2ce3.d: tests/tmp_probe.rs

/root/repo/target/release/deps/tmp_probe-c9318cc3bafe2ce3: tests/tmp_probe.rs

tests/tmp_probe.rs:
