/root/repo/target/release/deps/argus_classifier-377deb80a9f43770.d: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

/root/repo/target/release/deps/libargus_classifier-377deb80a9f43770.rlib: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

/root/repo/target/release/deps/libargus_classifier-377deb80a9f43770.rmeta: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

crates/classifier/src/lib.rs:
crates/classifier/src/drift.rs:
crates/classifier/src/features.rs:
crates/classifier/src/model.rs:
