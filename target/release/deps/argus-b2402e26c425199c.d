/root/repo/target/release/deps/argus-b2402e26c425199c.d: src/lib.rs

/root/repo/target/release/deps/argus-b2402e26c425199c: src/lib.rs

src/lib.rs:
