/root/repo/target/release/deps/s57_switching_overhead-5e2bd3890aef1676.d: crates/bench/benches/s57_switching_overhead.rs

/root/repo/target/release/deps/s57_switching_overhead-5e2bd3890aef1676: crates/bench/benches/s57_switching_overhead.rs

crates/bench/benches/s57_switching_overhead.rs:
