/root/repo/target/release/deps/argus_ilp-98cb4427463ceb4c.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

/root/repo/target/release/deps/libargus_ilp-98cb4427463ceb4c.rlib: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

/root/repo/target/release/deps/libargus_ilp-98cb4427463ceb4c.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/problem.rs:
crates/ilp/src/simplex.rs:
