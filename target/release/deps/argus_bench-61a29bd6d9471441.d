/root/repo/target/release/deps/argus_bench-61a29bd6d9471441.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/argus_bench-61a29bd6d9471441: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
