/root/repo/target/release/deps/fig10_oda_alignment-2b3a0dcf38850eec.d: crates/bench/benches/fig10_oda_alignment.rs

/root/repo/target/release/deps/fig10_oda_alignment-2b3a0dcf38850eec: crates/bench/benches/fig10_oda_alignment.rs

crates/bench/benches/fig10_oda_alignment.rs:
