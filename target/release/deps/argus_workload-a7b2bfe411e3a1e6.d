/root/repo/target/release/deps/argus_workload-a7b2bfe411e3a1e6.d: crates/workload/src/lib.rs

/root/repo/target/release/deps/libargus_workload-a7b2bfe411e3a1e6.rlib: crates/workload/src/lib.rs

/root/repo/target/release/deps/libargus_workload-a7b2bfe411e3a1e6.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
