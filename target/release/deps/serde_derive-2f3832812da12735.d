/root/repo/target/release/deps/serde_derive-2f3832812da12735.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-2f3832812da12735.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
