/root/repo/target/release/deps/solver_cross_validation-40ea429fc3882fa0.d: crates/core/tests/solver_cross_validation.rs

/root/repo/target/release/deps/solver_cross_validation-40ea429fc3882fa0: crates/core/tests/solver_cross_validation.rs

crates/core/tests/solver_cross_validation.rs:
