/root/repo/target/release/deps/serde-fbdd91ed4545b355.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-fbdd91ed4545b355.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-fbdd91ed4545b355.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
