/root/repo/target/release/deps/fig06_ac_quality_examples-08caf622162fde10.d: crates/bench/benches/fig06_ac_quality_examples.rs

/root/repo/target/release/deps/fig06_ac_quality_examples-08caf622162fde10: crates/bench/benches/fig06_ac_quality_examples.rs

crates/bench/benches/fig06_ac_quality_examples.rs:
