/root/repo/target/release/deps/end_to_end-209089054ad346b5.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-209089054ad346b5: tests/end_to_end.rs

tests/end_to_end.rs:
