/root/repo/target/release/deps/argus_bench-086bc1135c7a921f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libargus_bench-086bc1135c7a921f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libargus_bench-086bc1135c7a921f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
