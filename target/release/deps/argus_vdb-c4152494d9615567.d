/root/repo/target/release/deps/argus_vdb-c4152494d9615567.d: crates/vdb/src/lib.rs

/root/repo/target/release/deps/libargus_vdb-c4152494d9615567.rlib: crates/vdb/src/lib.rs

/root/repo/target/release/deps/libargus_vdb-c4152494d9615567.rmeta: crates/vdb/src/lib.rs

crates/vdb/src/lib.rs:
