/root/repo/target/release/deps/bytes-37f14ffe44180c15.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-37f14ffe44180c15.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-37f14ffe44180c15.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
