/root/repo/target/release/deps/s57_rng_streams-32edfc722da17650.d: crates/bench/benches/s57_rng_streams.rs

/root/repo/target/release/deps/s57_rng_streams-32edfc722da17650: crates/bench/benches/s57_rng_streams.rs

crates/bench/benches/s57_rng_streams.rs:
