/root/repo/target/release/deps/known_instances-b49d159bd2591f21.d: crates/ilp/tests/known_instances.rs

/root/repo/target/release/deps/known_instances-b49d159bd2591f21: crates/ilp/tests/known_instances.rs

crates/ilp/tests/known_instances.rs:
