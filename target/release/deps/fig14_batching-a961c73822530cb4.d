/root/repo/target/release/deps/fig14_batching-a961c73822530cb4.d: crates/bench/benches/fig14_batching.rs

/root/repo/target/release/deps/fig14_batching-a961c73822530cb4: crates/bench/benches/fig14_batching.rs

crates/bench/benches/fig14_batching.rs:
