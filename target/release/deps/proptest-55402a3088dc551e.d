/root/repo/target/release/deps/proptest-55402a3088dc551e.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-55402a3088dc551e: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
