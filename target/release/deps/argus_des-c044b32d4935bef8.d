/root/repo/target/release/deps/argus_des-c044b32d4935bef8.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/release/deps/argus_des-c044b32d4935bef8: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
