/root/repo/target/release/deps/study_human_perception-b882fc427c2b02f3.d: crates/bench/benches/study_human_perception.rs

/root/repo/target/release/deps/study_human_perception-b882fc427c2b02f3: crates/bench/benches/study_human_perception.rs

crates/bench/benches/study_human_perception.rs:
