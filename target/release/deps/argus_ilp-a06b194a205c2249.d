/root/repo/target/release/deps/argus_ilp-a06b194a205c2249.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

/root/repo/target/release/deps/argus_ilp-a06b194a205c2249: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/problem.rs:
crates/ilp/src/simplex.rs:
