/root/repo/target/release/deps/fig15_roofline-59482f44810629b8.d: crates/bench/benches/fig15_roofline.rs

/root/repo/target/release/deps/fig15_roofline-59482f44810629b8: crates/bench/benches/fig15_roofline.rs

crates/bench/benches/fig15_roofline.rs:
