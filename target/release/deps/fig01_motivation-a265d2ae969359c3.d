/root/repo/target/release/deps/fig01_motivation-a265d2ae969359c3.d: crates/bench/benches/fig01_motivation.rs

/root/repo/target/release/deps/fig01_motivation-a265d2ae969359c3: crates/bench/benches/fig01_motivation.rs

crates/bench/benches/fig01_motivation.rs:
