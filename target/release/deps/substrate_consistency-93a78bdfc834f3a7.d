/root/repo/target/release/deps/substrate_consistency-93a78bdfc834f3a7.d: tests/substrate_consistency.rs

/root/repo/target/release/deps/substrate_consistency-93a78bdfc834f3a7: tests/substrate_consistency.rs

tests/substrate_consistency.rs:
