/root/repo/target/release/deps/fig11_retrieval_spike-0ebec0349cdc8250.d: crates/bench/benches/fig11_retrieval_spike.rs

/root/repo/target/release/deps/fig11_retrieval_spike-0ebec0349cdc8250: crates/bench/benches/fig11_retrieval_spike.rs

crates/bench/benches/fig11_retrieval_spike.rs:
