/root/repo/target/release/deps/argus_prompts-fb99e581df00e013.d: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

/root/repo/target/release/deps/libargus_prompts-fb99e581df00e013.rlib: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

/root/repo/target/release/deps/libargus_prompts-fb99e581df00e013.rmeta: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

crates/prompts/src/lib.rs:
crates/prompts/src/generator.rs:
crates/prompts/src/vocab.rs:
