/root/repo/target/release/deps/criterion-13e0acab92a10d07.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-13e0acab92a10d07.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-13e0acab92a10d07.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
