/root/repo/target/release/deps/argus_cluster-a3a5dcd436504da9.d: crates/cluster/src/lib.rs

/root/repo/target/release/deps/argus_cluster-a3a5dcd436504da9: crates/cluster/src/lib.rs

crates/cluster/src/lib.rs:
