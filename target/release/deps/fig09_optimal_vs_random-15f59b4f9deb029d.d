/root/repo/target/release/deps/fig09_optimal_vs_random-15f59b4f9deb029d.d: crates/bench/benches/fig09_optimal_vs_random.rs

/root/repo/target/release/deps/fig09_optimal_vs_random-15f59b4f9deb029d: crates/bench/benches/fig09_optimal_vs_random.rs

crates/bench/benches/fig09_optimal_vs_random.rs:
