/root/repo/target/release/deps/fig12_overhead_timeline-a2eb96f66da82fe6.d: crates/bench/benches/fig12_overhead_timeline.rs

/root/repo/target/release/deps/fig12_overhead_timeline-a2eb96f66da82fe6: crates/bench/benches/fig12_overhead_timeline.rs

crates/bench/benches/fig12_overhead_timeline.rs:
