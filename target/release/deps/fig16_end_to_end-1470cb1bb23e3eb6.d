/root/repo/target/release/deps/fig16_end_to_end-1470cb1bb23e3eb6.d: crates/bench/benches/fig16_end_to_end.rs

/root/repo/target/release/deps/fig16_end_to_end-1470cb1bb23e3eb6: crates/bench/benches/fig16_end_to_end.rs

crates/bench/benches/fig16_end_to_end.rs:
