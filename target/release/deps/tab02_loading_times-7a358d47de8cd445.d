/root/repo/target/release/deps/tab02_loading_times-7a358d47de8cd445.d: crates/bench/benches/tab02_loading_times.rs

/root/repo/target/release/deps/tab02_loading_times-7a358d47de8cd445: crates/bench/benches/tab02_loading_times.rs

crates/bench/benches/tab02_loading_times.rs:
