/root/repo/target/release/deps/argus-876897b1f283dde3.d: src/lib.rs

/root/repo/target/release/deps/libargus-876897b1f283dde3.rlib: src/lib.rs

/root/repo/target/release/deps/libargus-876897b1f283dde3.rmeta: src/lib.rs

src/lib.rs:
