/root/repo/target/release/deps/fig05_latency_matrix-bce4779fd68be8ff.d: crates/bench/benches/fig05_latency_matrix.rs

/root/repo/target/release/deps/fig05_latency_matrix-bce4779fd68be8ff: crates/bench/benches/fig05_latency_matrix.rs

crates/bench/benches/fig05_latency_matrix.rs:
