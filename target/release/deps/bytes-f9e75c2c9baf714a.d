/root/repo/target/release/deps/bytes-f9e75c2c9baf714a.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-f9e75c2c9baf714a: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
