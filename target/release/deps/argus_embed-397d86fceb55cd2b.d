/root/repo/target/release/deps/argus_embed-397d86fceb55cd2b.d: crates/embed/src/lib.rs

/root/repo/target/release/deps/argus_embed-397d86fceb55cd2b: crates/embed/src/lib.rs

crates/embed/src/lib.rs:
