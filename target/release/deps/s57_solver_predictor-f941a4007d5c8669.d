/root/repo/target/release/deps/s57_solver_predictor-f941a4007d5c8669.d: crates/bench/benches/s57_solver_predictor.rs

/root/repo/target/release/deps/s57_solver_predictor-f941a4007d5c8669: crates/bench/benches/s57_solver_predictor.rs

crates/bench/benches/s57_solver_predictor.rs:
