/root/repo/target/release/deps/proptest-fbd0298a2695e69c.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-fbd0298a2695e69c.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-fbd0298a2695e69c.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
