/root/repo/target/release/deps/argus_prompts-c84f06ebb19fd662.d: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

/root/repo/target/release/deps/argus_prompts-c84f06ebb19fd662: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

crates/prompts/src/lib.rs:
crates/prompts/src/generator.rs:
crates/prompts/src/vocab.rs:
