/root/repo/target/release/deps/fault_injection-b1df7e8bd7e4a136.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-b1df7e8bd7e4a136: tests/fault_injection.rs

tests/fault_injection.rs:
