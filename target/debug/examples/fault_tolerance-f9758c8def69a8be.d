/root/repo/target/debug/examples/fault_tolerance-f9758c8def69a8be.d: examples/fault_tolerance.rs

/root/repo/target/debug/examples/fault_tolerance-f9758c8def69a8be: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
