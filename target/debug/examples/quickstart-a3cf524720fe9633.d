/root/repo/target/debug/examples/quickstart-a3cf524720fe9633.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a3cf524720fe9633: examples/quickstart.rs

examples/quickstart.rs:
