/root/repo/target/debug/examples/capacity_planning-d7319037f9571046.d: examples/capacity_planning.rs Cargo.toml

/root/repo/target/debug/examples/libcapacity_planning-d7319037f9571046.rmeta: examples/capacity_planning.rs Cargo.toml

examples/capacity_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
