/root/repo/target/debug/examples/production_trace-a21996c9893effeb.d: examples/production_trace.rs

/root/repo/target/debug/examples/production_trace-a21996c9893effeb: examples/production_trace.rs

examples/production_trace.rs:
