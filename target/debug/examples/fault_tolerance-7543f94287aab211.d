/root/repo/target/debug/examples/fault_tolerance-7543f94287aab211.d: examples/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/examples/libfault_tolerance-7543f94287aab211.rmeta: examples/fault_tolerance.rs Cargo.toml

examples/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
