/root/repo/target/debug/examples/production_trace-09c913f923bc60e0.d: examples/production_trace.rs Cargo.toml

/root/repo/target/debug/examples/libproduction_trace-09c913f923bc60e0.rmeta: examples/production_trace.rs Cargo.toml

examples/production_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
