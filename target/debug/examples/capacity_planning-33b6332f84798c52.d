/root/repo/target/debug/examples/capacity_planning-33b6332f84798c52.d: examples/capacity_planning.rs

/root/repo/target/debug/examples/capacity_planning-33b6332f84798c52: examples/capacity_planning.rs

examples/capacity_planning.rs:
