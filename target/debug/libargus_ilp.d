/root/repo/target/debug/libargus_ilp.rlib: /root/repo/crates/ilp/src/branch.rs /root/repo/crates/ilp/src/lib.rs /root/repo/crates/ilp/src/problem.rs /root/repo/crates/ilp/src/simplex.rs
