/root/repo/target/debug/deps/argus_cluster-7fcb522a8a931ac4.d: crates/cluster/src/lib.rs

/root/repo/target/debug/deps/libargus_cluster-7fcb522a8a931ac4.rlib: crates/cluster/src/lib.rs

/root/repo/target/debug/deps/libargus_cluster-7fcb522a8a931ac4.rmeta: crates/cluster/src/lib.rs

crates/cluster/src/lib.rs:
