/root/repo/target/debug/deps/argus_models-27281a71783bf66f.d: crates/models/src/lib.rs crates/models/src/ac.rs crates/models/src/approx.rs crates/models/src/batching.rs crates/models/src/component.rs crates/models/src/extended.rs crates/models/src/gpu.rs crates/models/src/latency.rs crates/models/src/nondm.rs crates/models/src/roofline.rs crates/models/src/variant.rs

/root/repo/target/debug/deps/libargus_models-27281a71783bf66f.rlib: crates/models/src/lib.rs crates/models/src/ac.rs crates/models/src/approx.rs crates/models/src/batching.rs crates/models/src/component.rs crates/models/src/extended.rs crates/models/src/gpu.rs crates/models/src/latency.rs crates/models/src/nondm.rs crates/models/src/roofline.rs crates/models/src/variant.rs

/root/repo/target/debug/deps/libargus_models-27281a71783bf66f.rmeta: crates/models/src/lib.rs crates/models/src/ac.rs crates/models/src/approx.rs crates/models/src/batching.rs crates/models/src/component.rs crates/models/src/extended.rs crates/models/src/gpu.rs crates/models/src/latency.rs crates/models/src/nondm.rs crates/models/src/roofline.rs crates/models/src/variant.rs

crates/models/src/lib.rs:
crates/models/src/ac.rs:
crates/models/src/approx.rs:
crates/models/src/batching.rs:
crates/models/src/component.rs:
crates/models/src/extended.rs:
crates/models/src/gpu.rs:
crates/models/src/latency.rs:
crates/models/src/nondm.rs:
crates/models/src/roofline.rs:
crates/models/src/variant.rs:
