/root/repo/target/debug/deps/argus_ilp-014c958634612072.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/argus_ilp-014c958634612072: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/problem.rs:
crates/ilp/src/simplex.rs:
