/root/repo/target/debug/deps/fig20_faults-52c1d2c538e9a949.d: crates/bench/benches/fig20_faults.rs Cargo.toml

/root/repo/target/debug/deps/libfig20_faults-52c1d2c538e9a949.rmeta: crates/bench/benches/fig20_faults.rs Cargo.toml

crates/bench/benches/fig20_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
