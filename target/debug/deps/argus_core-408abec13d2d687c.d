/root/repo/target/debug/deps/argus_core-408abec13d2d687c.d: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libargus_core-408abec13d2d687c.rlib: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libargus_core-408abec13d2d687c.rmeta: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/metrics.rs:
crates/core/src/oda.rs:
crates/core/src/policy.rs:
crates/core/src/predictor.rs:
crates/core/src/scheduler.rs:
crates/core/src/solver.rs:
crates/core/src/switcher.rs:
crates/core/src/system.rs:
