/root/repo/target/debug/deps/serde-68c0794a9492ec1e.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-68c0794a9492ec1e.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
