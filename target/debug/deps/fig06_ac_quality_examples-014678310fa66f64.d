/root/repo/target/debug/deps/fig06_ac_quality_examples-014678310fa66f64.d: crates/bench/benches/fig06_ac_quality_examples.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_ac_quality_examples-014678310fa66f64.rmeta: crates/bench/benches/fig06_ac_quality_examples.rs Cargo.toml

crates/bench/benches/fig06_ac_quality_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
