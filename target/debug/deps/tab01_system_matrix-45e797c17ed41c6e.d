/root/repo/target/debug/deps/tab01_system_matrix-45e797c17ed41c6e.d: crates/bench/benches/tab01_system_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libtab01_system_matrix-45e797c17ed41c6e.rmeta: crates/bench/benches/tab01_system_matrix.rs Cargo.toml

crates/bench/benches/tab01_system_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
