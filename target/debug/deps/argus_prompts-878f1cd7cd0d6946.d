/root/repo/target/debug/deps/argus_prompts-878f1cd7cd0d6946.d: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libargus_prompts-878f1cd7cd0d6946.rmeta: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs Cargo.toml

crates/prompts/src/lib.rs:
crates/prompts/src/generator.rs:
crates/prompts/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
