/root/repo/target/debug/deps/serde_derive-74dde945761595f2.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-74dde945761595f2.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
