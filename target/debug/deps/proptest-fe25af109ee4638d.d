/root/repo/target/debug/deps/proptest-fe25af109ee4638d.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-fe25af109ee4638d: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
