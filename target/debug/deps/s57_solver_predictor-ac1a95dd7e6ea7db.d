/root/repo/target/debug/deps/s57_solver_predictor-ac1a95dd7e6ea7db.d: crates/bench/benches/s57_solver_predictor.rs Cargo.toml

/root/repo/target/debug/deps/libs57_solver_predictor-ac1a95dd7e6ea7db.rmeta: crates/bench/benches/s57_solver_predictor.rs Cargo.toml

crates/bench/benches/s57_solver_predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
