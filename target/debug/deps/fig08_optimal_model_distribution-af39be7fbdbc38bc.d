/root/repo/target/debug/deps/fig08_optimal_model_distribution-af39be7fbdbc38bc.d: crates/bench/benches/fig08_optimal_model_distribution.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_optimal_model_distribution-af39be7fbdbc38bc.rmeta: crates/bench/benches/fig08_optimal_model_distribution.rs Cargo.toml

crates/bench/benches/fig08_optimal_model_distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
