/root/repo/target/debug/deps/argus_cluster-6417df55ebc9b380.d: crates/cluster/src/lib.rs

/root/repo/target/debug/deps/libargus_cluster-6417df55ebc9b380.rlib: crates/cluster/src/lib.rs

/root/repo/target/debug/deps/libargus_cluster-6417df55ebc9b380.rmeta: crates/cluster/src/lib.rs

crates/cluster/src/lib.rs:
