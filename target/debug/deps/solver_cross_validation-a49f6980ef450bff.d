/root/repo/target/debug/deps/solver_cross_validation-a49f6980ef450bff.d: crates/core/tests/solver_cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_cross_validation-a49f6980ef450bff.rmeta: crates/core/tests/solver_cross_validation.rs Cargo.toml

crates/core/tests/solver_cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
