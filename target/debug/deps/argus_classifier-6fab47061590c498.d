/root/repo/target/debug/deps/argus_classifier-6fab47061590c498.d: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libargus_classifier-6fab47061590c498.rmeta: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs Cargo.toml

crates/classifier/src/lib.rs:
crates/classifier/src/drift.rs:
crates/classifier/src/features.rs:
crates/classifier/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
