/root/repo/target/debug/deps/argus_workload-7cd5125afe0ceda3.d: crates/workload/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_workload-7cd5125afe0ceda3.rmeta: crates/workload/src/lib.rs Cargo.toml

crates/workload/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
