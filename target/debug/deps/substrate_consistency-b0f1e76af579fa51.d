/root/repo/target/debug/deps/substrate_consistency-b0f1e76af579fa51.d: tests/substrate_consistency.rs

/root/repo/target/debug/deps/substrate_consistency-b0f1e76af579fa51: tests/substrate_consistency.rs

tests/substrate_consistency.rs:
