/root/repo/target/debug/deps/fig14_batching-7e1bcd8df03604a6.d: crates/bench/benches/fig14_batching.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_batching-7e1bcd8df03604a6.rmeta: crates/bench/benches/fig14_batching.rs Cargo.toml

crates/bench/benches/fig14_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
