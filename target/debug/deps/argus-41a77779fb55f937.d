/root/repo/target/debug/deps/argus-41a77779fb55f937.d: src/lib.rs

/root/repo/target/debug/deps/libargus-41a77779fb55f937.rlib: src/lib.rs

/root/repo/target/debug/deps/libargus-41a77779fb55f937.rmeta: src/lib.rs

src/lib.rs:
