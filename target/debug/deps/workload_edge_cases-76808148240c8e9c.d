/root/repo/target/debug/deps/workload_edge_cases-76808148240c8e9c.d: tests/workload_edge_cases.rs

/root/repo/target/debug/deps/workload_edge_cases-76808148240c8e9c: tests/workload_edge_cases.rs

tests/workload_edge_cases.rs:
