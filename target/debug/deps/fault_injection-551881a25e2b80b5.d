/root/repo/target/debug/deps/fault_injection-551881a25e2b80b5.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-551881a25e2b80b5.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
