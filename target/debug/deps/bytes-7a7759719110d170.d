/root/repo/target/debug/deps/bytes-7a7759719110d170.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-7a7759719110d170: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
