/root/repo/target/debug/deps/argus_quality-e6069ef247f01315.d: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

/root/repo/target/debug/deps/argus_quality-e6069ef247f01315: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

crates/quality/src/lib.rs:
crates/quality/src/degradation.rs:
crates/quality/src/depth.rs:
crates/quality/src/oracle.rs:
crates/quality/src/rater.rs:
