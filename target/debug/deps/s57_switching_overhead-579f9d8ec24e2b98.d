/root/repo/target/debug/deps/s57_switching_overhead-579f9d8ec24e2b98.d: crates/bench/benches/s57_switching_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libs57_switching_overhead-579f9d8ec24e2b98.rmeta: crates/bench/benches/s57_switching_overhead.rs Cargo.toml

crates/bench/benches/s57_switching_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
