/root/repo/target/debug/deps/known_instances-07f21b9ad8d32c5a.d: crates/ilp/tests/known_instances.rs Cargo.toml

/root/repo/target/debug/deps/libknown_instances-07f21b9ad8d32c5a.rmeta: crates/ilp/tests/known_instances.rs Cargo.toml

crates/ilp/tests/known_instances.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
