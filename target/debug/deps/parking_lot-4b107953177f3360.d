/root/repo/target/debug/deps/parking_lot-4b107953177f3360.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-4b107953177f3360.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-4b107953177f3360.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
