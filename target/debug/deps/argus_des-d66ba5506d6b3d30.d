/root/repo/target/debug/deps/argus_des-d66ba5506d6b3d30.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/argus_des-d66ba5506d6b3d30: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
