/root/repo/target/debug/deps/paper_claims-64a72235fab9dd03.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-64a72235fab9dd03.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
