/root/repo/target/debug/deps/argus_classifier-e2aa3bbbb80d4f4c.d: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

/root/repo/target/debug/deps/argus_classifier-e2aa3bbbb80d4f4c: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

crates/classifier/src/lib.rs:
crates/classifier/src/drift.rs:
crates/classifier/src/features.rs:
crates/classifier/src/model.rs:
