/root/repo/target/debug/deps/fault_injection-8cce4283d73ac776.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-8cce4283d73ac776: tests/fault_injection.rs

tests/fault_injection.rs:
