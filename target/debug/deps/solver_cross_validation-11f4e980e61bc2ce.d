/root/repo/target/debug/deps/solver_cross_validation-11f4e980e61bc2ce.d: crates/core/tests/solver_cross_validation.rs

/root/repo/target/debug/deps/solver_cross_validation-11f4e980e61bc2ce: crates/core/tests/solver_cross_validation.rs

crates/core/tests/solver_cross_validation.rs:
