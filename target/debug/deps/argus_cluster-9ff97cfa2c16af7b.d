/root/repo/target/debug/deps/argus_cluster-9ff97cfa2c16af7b.d: crates/cluster/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_cluster-9ff97cfa2c16af7b.rmeta: crates/cluster/src/lib.rs Cargo.toml

crates/cluster/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
