/root/repo/target/debug/deps/argus_workload-5c28722c8290e015.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libargus_workload-5c28722c8290e015.rlib: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libargus_workload-5c28722c8290e015.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
