/root/repo/target/debug/deps/argus_models-f609b552709eec8d.d: crates/models/src/lib.rs crates/models/src/ac.rs crates/models/src/approx.rs crates/models/src/batching.rs crates/models/src/component.rs crates/models/src/extended.rs crates/models/src/gpu.rs crates/models/src/latency.rs crates/models/src/nondm.rs crates/models/src/roofline.rs crates/models/src/variant.rs Cargo.toml

/root/repo/target/debug/deps/libargus_models-f609b552709eec8d.rmeta: crates/models/src/lib.rs crates/models/src/ac.rs crates/models/src/approx.rs crates/models/src/batching.rs crates/models/src/component.rs crates/models/src/extended.rs crates/models/src/gpu.rs crates/models/src/latency.rs crates/models/src/nondm.rs crates/models/src/roofline.rs crates/models/src/variant.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/ac.rs:
crates/models/src/approx.rs:
crates/models/src/batching.rs:
crates/models/src/component.rs:
crates/models/src/extended.rs:
crates/models/src/gpu.rs:
crates/models/src/latency.rs:
crates/models/src/nondm.rs:
crates/models/src/roofline.rs:
crates/models/src/variant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
