/root/repo/target/debug/deps/argus_cachestore-03d200ef83e2d7b6.d: crates/cachestore/src/lib.rs

/root/repo/target/debug/deps/libargus_cachestore-03d200ef83e2d7b6.rlib: crates/cachestore/src/lib.rs

/root/repo/target/debug/deps/libargus_cachestore-03d200ef83e2d7b6.rmeta: crates/cachestore/src/lib.rs

crates/cachestore/src/lib.rs:
