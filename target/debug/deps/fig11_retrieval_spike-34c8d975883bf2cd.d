/root/repo/target/debug/deps/fig11_retrieval_spike-34c8d975883bf2cd.d: crates/bench/benches/fig11_retrieval_spike.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_retrieval_spike-34c8d975883bf2cd.rmeta: crates/bench/benches/fig11_retrieval_spike.rs Cargo.toml

crates/bench/benches/fig11_retrieval_spike.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
