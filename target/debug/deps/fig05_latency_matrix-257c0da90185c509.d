/root/repo/target/debug/deps/fig05_latency_matrix-257c0da90185c509.d: crates/bench/benches/fig05_latency_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_latency_matrix-257c0da90185c509.rmeta: crates/bench/benches/fig05_latency_matrix.rs Cargo.toml

crates/bench/benches/fig05_latency_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
