/root/repo/target/debug/deps/argus_cluster-7b69771210360a5f.d: crates/cluster/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_cluster-7b69771210360a5f.rmeta: crates/cluster/src/lib.rs Cargo.toml

crates/cluster/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
