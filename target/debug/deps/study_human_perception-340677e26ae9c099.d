/root/repo/target/debug/deps/study_human_perception-340677e26ae9c099.d: crates/bench/benches/study_human_perception.rs Cargo.toml

/root/repo/target/debug/deps/libstudy_human_perception-340677e26ae9c099.rmeta: crates/bench/benches/study_human_perception.rs Cargo.toml

crates/bench/benches/study_human_perception.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
