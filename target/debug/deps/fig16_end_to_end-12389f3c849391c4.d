/root/repo/target/debug/deps/fig16_end_to_end-12389f3c849391c4.d: crates/bench/benches/fig16_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_end_to_end-12389f3c849391c4.rmeta: crates/bench/benches/fig16_end_to_end.rs Cargo.toml

crates/bench/benches/fig16_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
