/root/repo/target/debug/deps/argus-feedd23bfd5e4cd4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus-feedd23bfd5e4cd4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
