/root/repo/target/debug/deps/serde-f45fbb12873f9109.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f45fbb12873f9109.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f45fbb12873f9109.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
