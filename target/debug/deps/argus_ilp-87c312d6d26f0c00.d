/root/repo/target/debug/deps/argus_ilp-87c312d6d26f0c00.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libargus_ilp-87c312d6d26f0c00.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs Cargo.toml

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/problem.rs:
crates/ilp/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
