/root/repo/target/debug/deps/parking_lot-b346cf2a5a288e85.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-b346cf2a5a288e85.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
