/root/repo/target/debug/deps/argus_cluster-4b86062a9ed135e9.d: crates/cluster/src/lib.rs

/root/repo/target/debug/deps/argus_cluster-4b86062a9ed135e9: crates/cluster/src/lib.rs

crates/cluster/src/lib.rs:
