/root/repo/target/debug/deps/fig19_classifier_quality-1023569e8b79ab65.d: crates/bench/benches/fig19_classifier_quality.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_classifier_quality-1023569e8b79ab65.rmeta: crates/bench/benches/fig19_classifier_quality.rs Cargo.toml

crates/bench/benches/fig19_classifier_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
