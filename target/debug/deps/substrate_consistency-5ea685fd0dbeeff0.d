/root/repo/target/debug/deps/substrate_consistency-5ea685fd0dbeeff0.d: tests/substrate_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_consistency-5ea685fd0dbeeff0.rmeta: tests/substrate_consistency.rs Cargo.toml

tests/substrate_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
