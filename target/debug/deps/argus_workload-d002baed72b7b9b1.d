/root/repo/target/debug/deps/argus_workload-d002baed72b7b9b1.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/argus_workload-d002baed72b7b9b1: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
