/root/repo/target/debug/deps/argus_embed-28dd0cd696ba7886.d: crates/embed/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_embed-28dd0cd696ba7886.rmeta: crates/embed/src/lib.rs Cargo.toml

crates/embed/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
