/root/repo/target/debug/deps/criterion-184c92da0441df4d.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-184c92da0441df4d.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
