/root/repo/target/debug/deps/argus_bench-ebd11b6cda93717c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/argus_bench-ebd11b6cda93717c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
