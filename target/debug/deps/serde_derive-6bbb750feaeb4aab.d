/root/repo/target/debug/deps/serde_derive-6bbb750feaeb4aab.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-6bbb750feaeb4aab: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
