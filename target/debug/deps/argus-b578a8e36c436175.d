/root/repo/target/debug/deps/argus-b578a8e36c436175.d: src/lib.rs

/root/repo/target/debug/deps/argus-b578a8e36c436175: src/lib.rs

src/lib.rs:
