/root/repo/target/debug/deps/argus_des-e266c51d221208bb.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libargus_des-e266c51d221208bb.rmeta: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
