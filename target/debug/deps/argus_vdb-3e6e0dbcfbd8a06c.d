/root/repo/target/debug/deps/argus_vdb-3e6e0dbcfbd8a06c.d: crates/vdb/src/lib.rs

/root/repo/target/debug/deps/argus_vdb-3e6e0dbcfbd8a06c: crates/vdb/src/lib.rs

crates/vdb/src/lib.rs:
