/root/repo/target/debug/deps/rand-f4926b28789965ee.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-f4926b28789965ee.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
