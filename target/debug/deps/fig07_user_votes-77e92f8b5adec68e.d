/root/repo/target/debug/deps/fig07_user_votes-77e92f8b5adec68e.d: crates/bench/benches/fig07_user_votes.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_user_votes-77e92f8b5adec68e.rmeta: crates/bench/benches/fig07_user_votes.rs Cargo.toml

crates/bench/benches/fig07_user_votes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
