/root/repo/target/debug/deps/tab03_flops-fedf1656ca1f7dd8.d: crates/bench/benches/tab03_flops.rs Cargo.toml

/root/repo/target/debug/deps/libtab03_flops-fedf1656ca1f7dd8.rmeta: crates/bench/benches/tab03_flops.rs Cargo.toml

crates/bench/benches/tab03_flops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
