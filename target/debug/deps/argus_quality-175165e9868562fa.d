/root/repo/target/debug/deps/argus_quality-175165e9868562fa.d: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

/root/repo/target/debug/deps/libargus_quality-175165e9868562fa.rlib: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

/root/repo/target/debug/deps/libargus_quality-175165e9868562fa.rmeta: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

crates/quality/src/lib.rs:
crates/quality/src/degradation.rs:
crates/quality/src/depth.rs:
crates/quality/src/oracle.rs:
crates/quality/src/rater.rs:
