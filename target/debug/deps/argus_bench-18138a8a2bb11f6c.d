/root/repo/target/debug/deps/argus_bench-18138a8a2bb11f6c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_bench-18138a8a2bb11f6c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
