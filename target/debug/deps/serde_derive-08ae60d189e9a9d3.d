/root/repo/target/debug/deps/serde_derive-08ae60d189e9a9d3.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-08ae60d189e9a9d3.rmeta: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
