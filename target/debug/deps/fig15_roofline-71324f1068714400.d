/root/repo/target/debug/deps/fig15_roofline-71324f1068714400.d: crates/bench/benches/fig15_roofline.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_roofline-71324f1068714400.rmeta: crates/bench/benches/fig15_roofline.rs Cargo.toml

crates/bench/benches/fig15_roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
