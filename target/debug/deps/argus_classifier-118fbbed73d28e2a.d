/root/repo/target/debug/deps/argus_classifier-118fbbed73d28e2a.d: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

/root/repo/target/debug/deps/libargus_classifier-118fbbed73d28e2a.rlib: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

/root/repo/target/debug/deps/libargus_classifier-118fbbed73d28e2a.rmeta: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

crates/classifier/src/lib.rs:
crates/classifier/src/drift.rs:
crates/classifier/src/features.rs:
crates/classifier/src/model.rs:
