/root/repo/target/debug/deps/argus_quality-f255f656b45f89e0.d: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs Cargo.toml

/root/repo/target/debug/deps/libargus_quality-f255f656b45f89e0.rmeta: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs Cargo.toml

crates/quality/src/lib.rs:
crates/quality/src/degradation.rs:
crates/quality/src/depth.rs:
crates/quality/src/oracle.rs:
crates/quality/src/rater.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
