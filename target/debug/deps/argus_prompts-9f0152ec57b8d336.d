/root/repo/target/debug/deps/argus_prompts-9f0152ec57b8d336.d: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

/root/repo/target/debug/deps/libargus_prompts-9f0152ec57b8d336.rlib: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

/root/repo/target/debug/deps/libargus_prompts-9f0152ec57b8d336.rmeta: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

crates/prompts/src/lib.rs:
crates/prompts/src/generator.rs:
crates/prompts/src/vocab.rs:
