/root/repo/target/debug/deps/end_to_end-8f4911efd424de03.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8f4911efd424de03: tests/end_to_end.rs

tests/end_to_end.rs:
