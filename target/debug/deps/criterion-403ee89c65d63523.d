/root/repo/target/debug/deps/criterion-403ee89c65d63523.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-403ee89c65d63523: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
