/root/repo/target/debug/deps/known_instances-a20144ee2ddc0fcb.d: crates/ilp/tests/known_instances.rs

/root/repo/target/debug/deps/known_instances-a20144ee2ddc0fcb: crates/ilp/tests/known_instances.rs

crates/ilp/tests/known_instances.rs:
