/root/repo/target/debug/deps/argus_embed-2767d14ab68a4bbd.d: crates/embed/src/lib.rs

/root/repo/target/debug/deps/argus_embed-2767d14ab68a4bbd: crates/embed/src/lib.rs

crates/embed/src/lib.rs:
