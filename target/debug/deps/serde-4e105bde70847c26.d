/root/repo/target/debug/deps/serde-4e105bde70847c26.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-4e105bde70847c26: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
