/root/repo/target/debug/deps/fig12_overhead_timeline-95551caa0a3fd1e8.d: crates/bench/benches/fig12_overhead_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_overhead_timeline-95551caa0a3fd1e8.rmeta: crates/bench/benches/fig12_overhead_timeline.rs Cargo.toml

crates/bench/benches/fig12_overhead_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
