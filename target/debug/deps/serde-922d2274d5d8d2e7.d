/root/repo/target/debug/deps/serde-922d2274d5d8d2e7.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-922d2274d5d8d2e7.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
