/root/repo/target/debug/deps/proptest-c0396eda3f97df6f.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c0396eda3f97df6f.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
