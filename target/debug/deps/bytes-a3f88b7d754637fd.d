/root/repo/target/debug/deps/bytes-a3f88b7d754637fd.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-a3f88b7d754637fd.rlib: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-a3f88b7d754637fd.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
