/root/repo/target/debug/deps/paper_claims-aee0430094628033.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-aee0430094628033: tests/paper_claims.rs

tests/paper_claims.rs:
