/root/repo/target/debug/deps/abl_design_choices-411d8b6b9a9fc97f.d: crates/bench/benches/abl_design_choices.rs Cargo.toml

/root/repo/target/debug/deps/libabl_design_choices-411d8b6b9a9fc97f.rmeta: crates/bench/benches/abl_design_choices.rs Cargo.toml

crates/bench/benches/abl_design_choices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
