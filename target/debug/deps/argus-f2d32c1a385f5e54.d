/root/repo/target/debug/deps/argus-f2d32c1a385f5e54.d: src/lib.rs

/root/repo/target/debug/deps/libargus-f2d32c1a385f5e54.rlib: src/lib.rs

/root/repo/target/debug/deps/libargus-f2d32c1a385f5e54.rmeta: src/lib.rs

src/lib.rs:
