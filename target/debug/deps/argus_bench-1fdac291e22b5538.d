/root/repo/target/debug/deps/argus_bench-1fdac291e22b5538.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libargus_bench-1fdac291e22b5538.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libargus_bench-1fdac291e22b5538.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
