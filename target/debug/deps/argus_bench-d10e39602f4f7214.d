/root/repo/target/debug/deps/argus_bench-d10e39602f4f7214.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_bench-d10e39602f4f7214.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
