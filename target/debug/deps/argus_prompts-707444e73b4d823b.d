/root/repo/target/debug/deps/argus_prompts-707444e73b4d823b.d: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

/root/repo/target/debug/deps/argus_prompts-707444e73b4d823b: crates/prompts/src/lib.rs crates/prompts/src/generator.rs crates/prompts/src/vocab.rs

crates/prompts/src/lib.rs:
crates/prompts/src/generator.rs:
crates/prompts/src/vocab.rs:
