/root/repo/target/debug/deps/fig18_drift_retraining-425d166194d6a7df.d: crates/bench/benches/fig18_drift_retraining.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_drift_retraining-425d166194d6a7df.rmeta: crates/bench/benches/fig18_drift_retraining.rs Cargo.toml

crates/bench/benches/fig18_drift_retraining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
