/root/repo/target/debug/deps/s57_rng_streams-db530ebe5566598d.d: crates/bench/benches/s57_rng_streams.rs Cargo.toml

/root/repo/target/debug/deps/libs57_rng_streams-db530ebe5566598d.rmeta: crates/bench/benches/s57_rng_streams.rs Cargo.toml

crates/bench/benches/s57_rng_streams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
