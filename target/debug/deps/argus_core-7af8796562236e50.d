/root/repo/target/debug/deps/argus_core-7af8796562236e50.d: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libargus_core-7af8796562236e50.rmeta: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/metrics.rs:
crates/core/src/oda.rs:
crates/core/src/policy.rs:
crates/core/src/predictor.rs:
crates/core/src/scheduler.rs:
crates/core/src/solver.rs:
crates/core/src/switcher.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
