/root/repo/target/debug/deps/argus_des-04a60f860adbda9b.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libargus_des-04a60f860adbda9b.rlib: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libargus_des-04a60f860adbda9b.rmeta: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
