/root/repo/target/debug/deps/argus_quality-6edda60fcff09a59.d: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs Cargo.toml

/root/repo/target/debug/deps/libargus_quality-6edda60fcff09a59.rmeta: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs Cargo.toml

crates/quality/src/lib.rs:
crates/quality/src/degradation.rs:
crates/quality/src/depth.rs:
crates/quality/src/oracle.rs:
crates/quality/src/rater.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
