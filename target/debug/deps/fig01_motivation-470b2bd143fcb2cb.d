/root/repo/target/debug/deps/fig01_motivation-470b2bd143fcb2cb.d: crates/bench/benches/fig01_motivation.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_motivation-470b2bd143fcb2cb.rmeta: crates/bench/benches/fig01_motivation.rs Cargo.toml

crates/bench/benches/fig01_motivation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
