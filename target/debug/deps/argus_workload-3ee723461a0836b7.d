/root/repo/target/debug/deps/argus_workload-3ee723461a0836b7.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libargus_workload-3ee723461a0836b7.rlib: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libargus_workload-3ee723461a0836b7.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
