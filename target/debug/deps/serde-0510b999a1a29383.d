/root/repo/target/debug/deps/serde-0510b999a1a29383.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-0510b999a1a29383.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-0510b999a1a29383.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
