/root/repo/target/debug/deps/argus_quality-2469c3c3eb46fc0b.d: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

/root/repo/target/debug/deps/libargus_quality-2469c3c3eb46fc0b.rlib: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

/root/repo/target/debug/deps/libargus_quality-2469c3c3eb46fc0b.rmeta: crates/quality/src/lib.rs crates/quality/src/degradation.rs crates/quality/src/depth.rs crates/quality/src/oracle.rs crates/quality/src/rater.rs

crates/quality/src/lib.rs:
crates/quality/src/degradation.rs:
crates/quality/src/depth.rs:
crates/quality/src/oracle.rs:
crates/quality/src/rater.rs:
