/root/repo/target/debug/deps/argus_core-5a2a050faa9439fd.d: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libargus_core-5a2a050faa9439fd.rlib: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libargus_core-5a2a050faa9439fd.rmeta: crates/core/src/lib.rs crates/core/src/metrics.rs crates/core/src/oda.rs crates/core/src/policy.rs crates/core/src/predictor.rs crates/core/src/scheduler.rs crates/core/src/solver.rs crates/core/src/switcher.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/metrics.rs:
crates/core/src/oda.rs:
crates/core/src/policy.rs:
crates/core/src/predictor.rs:
crates/core/src/scheduler.rs:
crates/core/src/solver.rs:
crates/core/src/switcher.rs:
crates/core/src/system.rs:
