/root/repo/target/debug/deps/fig09_optimal_vs_random-a594de86a3b0c5c5.d: crates/bench/benches/fig09_optimal_vs_random.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_optimal_vs_random-a594de86a3b0c5c5.rmeta: crates/bench/benches/fig09_optimal_vs_random.rs Cargo.toml

crates/bench/benches/fig09_optimal_vs_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
