/root/repo/target/debug/deps/argus_cachestore-72ea1ca8d898ddfa.d: crates/cachestore/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_cachestore-72ea1ca8d898ddfa.rmeta: crates/cachestore/src/lib.rs Cargo.toml

crates/cachestore/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
