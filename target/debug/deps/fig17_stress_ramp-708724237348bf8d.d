/root/repo/target/debug/deps/fig17_stress_ramp-708724237348bf8d.d: crates/bench/benches/fig17_stress_ramp.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_stress_ramp-708724237348bf8d.rmeta: crates/bench/benches/fig17_stress_ramp.rs Cargo.toml

crates/bench/benches/fig17_stress_ramp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
