/root/repo/target/debug/deps/argus-e09aaf809eb5b0be.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus-e09aaf809eb5b0be.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
