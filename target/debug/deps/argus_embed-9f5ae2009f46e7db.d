/root/repo/target/debug/deps/argus_embed-9f5ae2009f46e7db.d: crates/embed/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_embed-9f5ae2009f46e7db.rmeta: crates/embed/src/lib.rs Cargo.toml

crates/embed/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
