/root/repo/target/debug/deps/workload_edge_cases-6cf7da60dc4d8daa.d: tests/workload_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_edge_cases-6cf7da60dc4d8daa.rmeta: tests/workload_edge_cases.rs Cargo.toml

tests/workload_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
