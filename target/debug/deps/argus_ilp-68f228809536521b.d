/root/repo/target/debug/deps/argus_ilp-68f228809536521b.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libargus_ilp-68f228809536521b.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs Cargo.toml

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/problem.rs:
crates/ilp/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
