/root/repo/target/debug/deps/fig10_oda_alignment-9e98b5680443ff28.d: crates/bench/benches/fig10_oda_alignment.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_oda_alignment-9e98b5680443ff28.rmeta: crates/bench/benches/fig10_oda_alignment.rs Cargo.toml

crates/bench/benches/fig10_oda_alignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
