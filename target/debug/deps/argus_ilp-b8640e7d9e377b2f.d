/root/repo/target/debug/deps/argus_ilp-b8640e7d9e377b2f.d: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/libargus_ilp-b8640e7d9e377b2f.rlib: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

/root/repo/target/debug/deps/libargus_ilp-b8640e7d9e377b2f.rmeta: crates/ilp/src/lib.rs crates/ilp/src/branch.rs crates/ilp/src/problem.rs crates/ilp/src/simplex.rs

crates/ilp/src/lib.rs:
crates/ilp/src/branch.rs:
crates/ilp/src/problem.rs:
crates/ilp/src/simplex.rs:
