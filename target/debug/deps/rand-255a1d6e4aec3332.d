/root/repo/target/debug/deps/rand-255a1d6e4aec3332.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-255a1d6e4aec3332: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
