/root/repo/target/debug/deps/argus_vdb-2d8690c0746a2507.d: crates/vdb/src/lib.rs

/root/repo/target/debug/deps/libargus_vdb-2d8690c0746a2507.rlib: crates/vdb/src/lib.rs

/root/repo/target/debug/deps/libargus_vdb-2d8690c0746a2507.rmeta: crates/vdb/src/lib.rs

crates/vdb/src/lib.rs:
