/root/repo/target/debug/deps/serde_derive-6ef62af9f66bb2cf.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-6ef62af9f66bb2cf.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
