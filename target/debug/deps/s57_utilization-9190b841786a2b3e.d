/root/repo/target/debug/deps/s57_utilization-9190b841786a2b3e.d: crates/bench/benches/s57_utilization.rs Cargo.toml

/root/repo/target/debug/deps/libs57_utilization-9190b841786a2b3e.rmeta: crates/bench/benches/s57_utilization.rs Cargo.toml

crates/bench/benches/s57_utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
