/root/repo/target/debug/deps/fig13_pareto-05e3600b9be54b19.d: crates/bench/benches/fig13_pareto.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_pareto-05e3600b9be54b19.rmeta: crates/bench/benches/fig13_pareto.rs Cargo.toml

crates/bench/benches/fig13_pareto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
