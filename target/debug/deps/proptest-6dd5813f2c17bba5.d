/root/repo/target/debug/deps/proptest-6dd5813f2c17bba5.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6dd5813f2c17bba5.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6dd5813f2c17bba5.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
