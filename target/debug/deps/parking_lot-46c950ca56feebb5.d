/root/repo/target/debug/deps/parking_lot-46c950ca56feebb5.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-46c950ca56feebb5.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
