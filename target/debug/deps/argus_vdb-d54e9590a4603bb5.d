/root/repo/target/debug/deps/argus_vdb-d54e9590a4603bb5.d: crates/vdb/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libargus_vdb-d54e9590a4603bb5.rmeta: crates/vdb/src/lib.rs Cargo.toml

crates/vdb/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
