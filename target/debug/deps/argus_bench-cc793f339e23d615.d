/root/repo/target/debug/deps/argus_bench-cc793f339e23d615.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libargus_bench-cc793f339e23d615.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libargus_bench-cc793f339e23d615.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
