/root/repo/target/debug/deps/serde_derive-f2e9ee99b7b2c2f6.d: shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-f2e9ee99b7b2c2f6.rmeta: shims/serde_derive/src/lib.rs Cargo.toml

shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
