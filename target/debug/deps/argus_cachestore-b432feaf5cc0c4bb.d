/root/repo/target/debug/deps/argus_cachestore-b432feaf5cc0c4bb.d: crates/cachestore/src/lib.rs

/root/repo/target/debug/deps/argus_cachestore-b432feaf5cc0c4bb: crates/cachestore/src/lib.rs

crates/cachestore/src/lib.rs:
