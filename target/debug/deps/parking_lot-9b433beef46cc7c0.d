/root/repo/target/debug/deps/parking_lot-9b433beef46cc7c0.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-9b433beef46cc7c0: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
