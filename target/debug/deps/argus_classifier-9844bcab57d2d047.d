/root/repo/target/debug/deps/argus_classifier-9844bcab57d2d047.d: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

/root/repo/target/debug/deps/libargus_classifier-9844bcab57d2d047.rlib: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

/root/repo/target/debug/deps/libargus_classifier-9844bcab57d2d047.rmeta: crates/classifier/src/lib.rs crates/classifier/src/drift.rs crates/classifier/src/features.rs crates/classifier/src/model.rs

crates/classifier/src/lib.rs:
crates/classifier/src/drift.rs:
crates/classifier/src/features.rs:
crates/classifier/src/model.rs:
