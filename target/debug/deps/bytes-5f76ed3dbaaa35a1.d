/root/repo/target/debug/deps/bytes-5f76ed3dbaaa35a1.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-5f76ed3dbaaa35a1.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
