/root/repo/target/debug/deps/micro-33e3714aeaf6839b.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-33e3714aeaf6839b.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
