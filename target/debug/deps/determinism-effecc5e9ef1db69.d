/root/repo/target/debug/deps/determinism-effecc5e9ef1db69.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-effecc5e9ef1db69: tests/determinism.rs

tests/determinism.rs:
