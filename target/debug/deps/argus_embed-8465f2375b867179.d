/root/repo/target/debug/deps/argus_embed-8465f2375b867179.d: crates/embed/src/lib.rs

/root/repo/target/debug/deps/libargus_embed-8465f2375b867179.rlib: crates/embed/src/lib.rs

/root/repo/target/debug/deps/libargus_embed-8465f2375b867179.rmeta: crates/embed/src/lib.rs

crates/embed/src/lib.rs:
