/root/repo/target/debug/deps/bytes-ef374b299dc99977.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-ef374b299dc99977.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
