/root/repo/target/debug/deps/tab02_loading_times-14a7012addcd51af.d: crates/bench/benches/tab02_loading_times.rs Cargo.toml

/root/repo/target/debug/deps/libtab02_loading_times-14a7012addcd51af.rmeta: crates/bench/benches/tab02_loading_times.rs Cargo.toml

crates/bench/benches/tab02_loading_times.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
