/root/repo/target/debug/libargus_prompts.rlib: /root/repo/crates/prompts/src/generator.rs /root/repo/crates/prompts/src/lib.rs /root/repo/crates/prompts/src/vocab.rs /root/repo/shims/rand/src/lib.rs
