/root/repo/target/debug/libbytes.rlib: /root/repo/shims/bytes/src/lib.rs
